//! Sparse word-addressed memory.
//!
//! Memory is stored as 4 KiB pages (512 × 64-bit words) allocated on first
//! write. Unwritten memory reads as zero, which keeps the sequential
//! reference machine total and deterministic even when a mis-steered MSSP
//! slave wanders into unmapped addresses.

use std::collections::HashMap;
use std::sync::Arc;

/// Words per page (4 KiB pages).
const PAGE_WORDS: u64 = 512;

/// Sparse 64-bit-word-addressed memory with zero-fill semantics.
///
/// Addresses used with this type are *word indices* (byte address / 8); the
/// byte-granular view lives in [`crate::Storage`]'s helper methods.
///
/// Pages are reference-counted and copied on write, so cloning a
/// `SparseMem` (the MSSP master snapshots architected state at every
/// restart) costs one refcount bump per resident page.
///
/// # Examples
///
/// ```
/// use mssp_machine::SparseMem;
///
/// let mut m = SparseMem::new();
/// assert_eq!(m.load(123), 0);
/// m.store(123, 0xABCD);
/// assert_eq!(m.load(123), 0xABCD);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseMem {
    pages: HashMap<u64, Arc<Vec<u64>>>,
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Loads the word at word index `widx` (zero if never written).
    #[must_use]
    pub fn load(&self, widx: u64) -> u64 {
        match self.pages.get(&(widx / PAGE_WORDS)) {
            Some(page) => page[(widx % PAGE_WORDS) as usize],
            None => 0,
        }
    }

    /// Stores `value` at word index `widx`.
    pub fn store(&mut self, widx: u64, value: u64) {
        let page = self
            .pages
            .entry(widx / PAGE_WORDS)
            .or_insert_with(|| Arc::new(vec![0; PAGE_WORDS as usize]));
        Arc::make_mut(page)[(widx % PAGE_WORDS) as usize] = value;
    }

    /// Copies a byte image into memory starting at byte address `base`.
    ///
    /// Used to load a program's data segment. Bytes are placed
    /// little-endian within each word, matching the ISA's byte order.
    pub fn write_image(&mut self, base: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let addr = base + i as u64;
            let widx = addr >> 3;
            let shift = (addr & 7) * 8;
            let old = self.load(widx);
            let cleared = old & !(0xFFu64 << shift);
            self.store(widx, cleared | ((b as u64) << shift));
        }
    }

    /// Reads one byte at byte address `addr`.
    #[must_use]
    pub fn read_byte(&self, addr: u64) -> u8 {
        let word = self.load(addr >> 3);
        (word >> ((addr & 7) * 8)) as u8
    }

    /// Reads `len` bytes starting at byte address `base`.
    #[must_use]
    pub fn read_bytes(&self, base: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_byte(base + i)).collect()
    }

    /// Number of resident (allocated) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages physically shared (same allocation) with `other`.
    ///
    /// This is the observable form of the copy-on-write guarantee that
    /// makes snapshot publication cheap: cloning a `SparseMem` shares
    /// every resident page, and a store after the clone unshares only the
    /// page it touches — so publishing a fresh snapshot per commit costs
    /// O(pages written since the last snapshot), not O(total state).
    #[must_use]
    pub fn shared_pages_with(&self, other: &SparseMem) -> usize {
        self.pages
            .iter()
            .filter(|(k, p)| other.pages.get(k).is_some_and(|q| Arc::ptr_eq(p, q)))
            .count()
    }

    /// Iterates over all words ever written (including those re-written to
    /// zero), as `(word_index, value)` pairs in unspecified order.
    pub fn iter_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.pages.iter().flat_map(|(p, page)| {
            let base = p * PAGE_WORDS;
            page.iter()
                .enumerate()
                .map(move |(i, &v)| (base + i as u64, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = SparseMem::new();
        assert_eq!(m.load(0), 0);
        assert_eq!(m.load(u64::MAX / 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn store_load_round_trip_across_pages() {
        let mut m = SparseMem::new();
        for i in 0..2000u64 {
            m.store(i * 37, i);
        }
        for i in 0..2000u64 {
            assert_eq!(m.load(i * 37), i);
        }
        assert!(m.resident_pages() > 1);
    }

    #[test]
    fn write_image_is_little_endian() {
        let mut m = SparseMem::new();
        m.write_image(0x100, &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]);
        assert_eq!(m.load(0x100 >> 3), 0x8877_6655_4433_2211);
    }

    #[test]
    fn write_image_handles_unaligned_base() {
        let mut m = SparseMem::new();
        m.store(0x20, u64::MAX);
        m.write_image(0x103, &[0xAB]);
        assert_eq!(m.read_byte(0x103), 0xAB);
        // Neighbouring bytes of the pre-existing word are preserved.
        assert_eq!(m.read_byte(0x102), 0xFF);
        assert_eq!(m.read_byte(0x104), 0xFF);
    }

    #[test]
    fn clone_shares_every_page() {
        let mut m = SparseMem::new();
        for i in 0..10u64 {
            m.store(i * PAGE_WORDS, i + 1);
        }
        let snap = m.clone();
        assert_eq!(snap.shared_pages_with(&m), m.resident_pages());
    }

    #[test]
    fn store_after_clone_unshares_only_the_touched_page() {
        let mut m = SparseMem::new();
        for i in 0..10u64 {
            m.store(i * PAGE_WORDS, i + 1);
        }
        let snap = m.clone();
        m.store(3 * PAGE_WORDS + 5, 99);
        // Exactly one page diverged; the snapshot still reads old data.
        assert_eq!(snap.shared_pages_with(&m), m.resident_pages() - 1);
        assert_eq!(snap.load(3 * PAGE_WORDS + 5), 0);
        assert_eq!(m.load(3 * PAGE_WORDS + 5), 99);
    }

    #[test]
    fn read_bytes_spans_words() {
        let mut m = SparseMem::new();
        m.write_image(0, b"abcdefghij");
        assert_eq!(m.read_bytes(2, 6), b"cdefgh");
    }
}
