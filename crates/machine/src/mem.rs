//! Sparse word-addressed memory.
//!
//! Memory is stored as 4 KiB pages (512 × 64-bit words) allocated on first
//! write. Unwritten memory reads as zero, which keeps the sequential
//! reference machine total and deterministic even when a mis-steered MSSP
//! slave wanders into unmapped addresses.
//!
//! # Layout for multi-threaded readers
//!
//! The threaded executor shares one base snapshot across every worker
//! while the coordinator keeps mutating its own architected copy, so two
//! properties matter beyond the single-threaded case:
//!
//! * **Pages are cache-line aligned.** [`Page`] is `#[repr(align(64))]`,
//!   which (a) keeps page data from straddling a line boundary shared
//!   with unrelated heap objects and (b) pushes the `Arc` refcount
//!   header onto its *own* line — a coordinator bumping refcounts while
//!   cloning a snapshot never write-shares a line with workers streaming
//!   page data.
//! * **The page table is striped.** Pages are spread across
//!   [`STRIPES`] independent, line-padded hash maps keyed by the low
//!   bits of the page index, so concurrent readers of *different* pages
//!   walk different map allocations instead of contending on one table's
//!   buckets.

use std::collections::HashMap;
use std::sync::Arc;

/// Words per page (4 KiB pages).
const PAGE_WORDS: u64 = 512;

/// Number of independent page-table stripes (power of two).
const STRIPES: usize = 8;

/// One 4 KiB page, aligned to a cache line so the page data — and the
/// `Arc` header in front of it — never share a line with neighbours.
#[derive(Debug, Clone, PartialEq, Eq)]
#[repr(align(64))]
struct Page {
    words: [u64; PAGE_WORDS as usize],
}

impl Page {
    fn zeroed() -> Page {
        Page {
            words: [0; PAGE_WORDS as usize],
        }
    }
}

/// One page-table stripe, padded to a cache line so adjacent stripes can
/// be touched by different threads without false sharing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[repr(align(64))]
struct Stripe {
    pages: HashMap<u64, Arc<Page>>,
}

/// Sparse 64-bit-word-addressed memory with zero-fill semantics.
///
/// Addresses used with this type are *word indices* (byte address / 8); the
/// byte-granular view lives in [`crate::Storage`]'s helper methods.
///
/// Pages are reference-counted and copied on write, so cloning a
/// `SparseMem` (the MSSP master snapshots architected state at every
/// restart) costs one refcount bump per resident page.
///
/// # Examples
///
/// ```
/// use mssp_machine::SparseMem;
///
/// let mut m = SparseMem::new();
/// assert_eq!(m.load(123), 0);
/// m.store(123, 0xABCD);
/// assert_eq!(m.load(123), 0xABCD);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseMem {
    stripes: [Stripe; STRIPES],
}

impl Default for SparseMem {
    fn default() -> SparseMem {
        SparseMem {
            stripes: std::array::from_fn(|_| Stripe::default()),
        }
    }
}

impl SparseMem {
    /// Creates an empty (all-zero) memory.
    #[must_use]
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    #[inline]
    fn stripe_of(page_idx: u64) -> usize {
        (page_idx as usize) & (STRIPES - 1)
    }

    /// Loads the word at word index `widx` (zero if never written).
    #[must_use]
    pub fn load(&self, widx: u64) -> u64 {
        let page_idx = widx / PAGE_WORDS;
        match self.stripes[Self::stripe_of(page_idx)].pages.get(&page_idx) {
            Some(page) => page.words[(widx % PAGE_WORDS) as usize],
            None => 0,
        }
    }

    /// Stores `value` at word index `widx`.
    pub fn store(&mut self, widx: u64, value: u64) {
        let page_idx = widx / PAGE_WORDS;
        let page = self.stripes[Self::stripe_of(page_idx)]
            .pages
            .entry(page_idx)
            .or_insert_with(|| Arc::new(Page::zeroed()));
        Arc::make_mut(page).words[(widx % PAGE_WORDS) as usize] = value;
    }

    /// Copies a byte image into memory starting at byte address `base`.
    ///
    /// Used to load a program's data segment. Bytes are placed
    /// little-endian within each word, matching the ISA's byte order.
    pub fn write_image(&mut self, base: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let addr = base + i as u64;
            let widx = addr >> 3;
            let shift = (addr & 7) * 8;
            let old = self.load(widx);
            let cleared = old & !(0xFFu64 << shift);
            self.store(widx, cleared | ((b as u64) << shift));
        }
    }

    /// Reads one byte at byte address `addr`.
    #[must_use]
    pub fn read_byte(&self, addr: u64) -> u8 {
        let word = self.load(addr >> 3);
        (word >> ((addr & 7) * 8)) as u8
    }

    /// Reads `len` bytes starting at byte address `base`.
    #[must_use]
    pub fn read_bytes(&self, base: u64, len: usize) -> Vec<u8> {
        (0..len as u64).map(|i| self.read_byte(base + i)).collect()
    }

    /// Number of resident (allocated) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.stripes.iter().map(|s| s.pages.len()).sum()
    }

    /// Number of pages physically shared (same allocation) with `other`.
    ///
    /// This is the observable form of the copy-on-write guarantee that
    /// makes snapshot publication cheap: cloning a `SparseMem` shares
    /// every resident page, and a store after the clone unshares only the
    /// page it touches — so publishing a fresh snapshot per commit costs
    /// O(pages written since the last snapshot), not O(total state).
    #[must_use]
    pub fn shared_pages_with(&self, other: &SparseMem) -> usize {
        self.stripes
            .iter()
            .zip(other.stripes.iter())
            .map(|(a, b)| {
                a.pages
                    .iter()
                    .filter(|(k, p)| b.pages.get(k).is_some_and(|q| Arc::ptr_eq(p, q)))
                    .count()
            })
            .sum()
    }

    /// Iterates over all words ever written (including those re-written to
    /// zero), as `(word_index, value)` pairs in unspecified order.
    pub fn iter_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.stripes.iter().flat_map(|s| {
            s.pages.iter().flat_map(|(p, page)| {
                let base = p * PAGE_WORDS;
                page.words
                    .iter()
                    .enumerate()
                    .map(move |(i, &v)| (base + i as u64, v))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = SparseMem::new();
        assert_eq!(m.load(0), 0);
        assert_eq!(m.load(u64::MAX / 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn store_load_round_trip_across_pages() {
        let mut m = SparseMem::new();
        for i in 0..2000u64 {
            m.store(i * 37, i);
        }
        for i in 0..2000u64 {
            assert_eq!(m.load(i * 37), i);
        }
        assert!(m.resident_pages() > 1);
    }

    #[test]
    fn write_image_is_little_endian() {
        let mut m = SparseMem::new();
        m.write_image(0x100, &[0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88]);
        assert_eq!(m.load(0x100 >> 3), 0x8877_6655_4433_2211);
    }

    #[test]
    fn write_image_handles_unaligned_base() {
        let mut m = SparseMem::new();
        m.store(0x20, u64::MAX);
        m.write_image(0x103, &[0xAB]);
        assert_eq!(m.read_byte(0x103), 0xAB);
        // Neighbouring bytes of the pre-existing word are preserved.
        assert_eq!(m.read_byte(0x102), 0xFF);
        assert_eq!(m.read_byte(0x104), 0xFF);
    }

    #[test]
    fn clone_shares_every_page() {
        let mut m = SparseMem::new();
        for i in 0..10u64 {
            m.store(i * PAGE_WORDS, i + 1);
        }
        let snap = m.clone();
        assert_eq!(snap.shared_pages_with(&m), m.resident_pages());
    }

    #[test]
    fn store_after_clone_unshares_only_the_touched_page() {
        let mut m = SparseMem::new();
        for i in 0..10u64 {
            m.store(i * PAGE_WORDS, i + 1);
        }
        let snap = m.clone();
        m.store(3 * PAGE_WORDS + 5, 99);
        // Exactly one page diverged; the snapshot still reads old data.
        assert_eq!(snap.shared_pages_with(&m), m.resident_pages() - 1);
        assert_eq!(snap.load(3 * PAGE_WORDS + 5), 0);
        assert_eq!(m.load(3 * PAGE_WORDS + 5), 99);
    }

    #[test]
    fn read_bytes_spans_words() {
        let mut m = SparseMem::new();
        m.write_image(0, b"abcdefghij");
        assert_eq!(m.read_bytes(2, 6), b"cdefgh");
    }

    #[test]
    fn pages_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<Page>(), 64);
        assert_eq!(std::mem::align_of::<Stripe>(), 64);
        // The Arc payload itself lands on a line boundary, which forces
        // the refcount header onto the preceding (separate) line.
        let mut m = SparseMem::new();
        m.store(0, 1);
        let page = m.stripes[0].pages.get(&0).unwrap();
        assert_eq!(Arc::as_ptr(page) as usize % 64, 0);
    }

    #[test]
    fn striping_spreads_consecutive_pages() {
        let mut m = SparseMem::new();
        for p in 0..STRIPES as u64 {
            m.store(p * PAGE_WORDS, 1);
        }
        for s in &m.stripes {
            assert_eq!(
                s.pages.len(),
                1,
                "consecutive pages land on distinct stripes"
            );
        }
    }
}
