//! # mssp-machine
//!
//! Machine state and the sequential reference semantics (`SEQ`) for the
//! MSSP reproduction, including the formal model's objects:
//!
//! * [`MachineState`] — a total machine state (registers, PC, sparse
//!   memory): the *architected state* of an MSSP machine.
//! * [`Delta`] — a partial machine state with the paper's
//!   **superimposition** (`S₀ ← S₁`) and **consistency** (`S₁ ⊑ S₂`)
//!   operators. Live-ins, live-outs and checkpoints are all `Delta`s.
//! * [`step`] — the `next(S)` function, generic over [`Storage`] so the
//!   identical semantics drive the reference machine, MSSP slaves and the
//!   master.
//! * [`SeqMachine`], [`seq_n`], [`cumulative_writes`] — the `SEQ` model:
//!   `seq(S, n)` and `Δ(S, n)`.
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_isa::Reg;
//! use mssp_machine::SeqMachine;
//!
//! let program = assemble(
//!     "main: addi a0, zero, 10
//!            addi a1, zero, 0
//!      loop: add  a1, a1, a0
//!            addi a0, a0, -1
//!            bnez a0, loop
//!            halt",
//! ).unwrap();
//!
//! let mut machine = SeqMachine::boot(&program);
//! machine.run(1_000_000).unwrap();
//! assert_eq!(machine.state().reg(Reg::A1), 55);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod arena;
mod cell;
mod delta;
mod exec;
mod mem;
mod seq;
mod sliceval;
mod state;
mod trace;

pub use arena::DeltaArena;
pub use cell::Cell;
pub use delta::{expand_mask, Delta, MaskedVal};
pub use exec::{step, Fault, MemAccess, StepInfo};
pub use mem::SparseMem;
pub use seq::{cumulative_writes, seq_n, HaltError, RunSummary, SeqError, SeqMachine, StopReason};
pub use sliceval::{eval_slice, SliceEval};
pub use state::{MachineState, Recording, Storage};
pub use trace::{Trace, TraceStep};
