//! Engine edge-path tests: overrun, fault, master run-ahead, recovery
//! caps, diagnostics APIs — the squash/recovery machinery under hostile
//! configurations.

use std::collections::{BTreeMap, BTreeSet};

use mssp_analysis::Profile;
use mssp_core::{Engine, EngineConfig, EngineError, UnitCost};
use mssp_distill::{distill, DistillConfig, Distilled};
use mssp_isa::asm::assemble;
use mssp_isa::{Program, Reg};
use mssp_machine::SeqMachine;

const SUM: &str = "
    main: addi s0, zero, 120
    loop: add  s1, s1, s0
          addi s0, s0, -1
          bnez s0, loop
          halt";

fn seq_s1(p: &Program) -> u64 {
    let mut m = SeqMachine::boot(p);
    m.run(u64::MAX).unwrap();
    m.state().reg(Reg::S1)
}

fn honest(p: &Program) -> Distilled {
    let profile = Profile::collect(p, u64::MAX).unwrap();
    distill(p, &profile, &DistillConfig::default()).unwrap()
}

#[test]
fn tiny_task_cap_forces_overruns_but_stays_correct() {
    let p = assemble(SUM).unwrap();
    let d = honest(&p);
    let cfg = EngineConfig {
        max_task_instrs: 4, // absurdly small: every multi-crossing task overruns
        ..EngineConfig::default()
    };
    let run = Engine::new(&p, &d, cfg, UnitCost).run().unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq_s1(&p));
}

#[test]
fn master_runahead_cap_marks_master_lost_but_stays_correct() {
    let p = assemble(SUM).unwrap();
    // A master that spins without ever crossing a boundary.
    let spin = assemble("main: j main").unwrap();
    let mut map = BTreeMap::new();
    map.insert(p.entry(), spin.entry());
    let d = Distilled::from_parts(spin, BTreeSet::from([p.entry() + 4]), map);
    let cfg = EngineConfig {
        master_runahead: 100,
        ..EngineConfig::default()
    };
    let run = Engine::new(&p, &d, cfg, UnitCost).run().unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq_s1(&p));
    // Work flowed through starvation recovery (spin master spawned one
    // task at entry; everything after came from recovery segments).
    assert!(run.stats.recovery_instructions > 0);
}

#[test]
fn recovery_cap_reports_engine_error() {
    // A program that loops forever with no boundary: recovery cannot end.
    let p = assemble("main: j main").unwrap();
    let dead = assemble("main: halt").unwrap();
    let mut map = BTreeMap::new();
    map.insert(p.entry(), dead.entry());
    let d = Distilled::from_parts(dead, BTreeSet::new(), map);
    let cfg = EngineConfig {
        max_recovery_instrs: 1_000,
        max_task_instrs: 100,
        ..EngineConfig::default()
    };
    let err = Engine::new(&p, &d, cfg, UnitCost).run().unwrap_err();
    assert_eq!(err, EngineError::RecoveryLimit);
}

#[test]
fn wild_jump_in_original_program_faults_recovery() {
    // The original program itself jumps outside the text segment: that is
    // a genuine program error and must surface as RecoveryFault, not hang.
    let p = assemble("main: li t0, 0x40000\n jalr zero, 0(t0)\n halt").unwrap();
    let dead = assemble("main: halt").unwrap();
    let mut map = BTreeMap::new();
    map.insert(p.entry(), dead.entry());
    let d = Distilled::from_parts(dead, BTreeSet::new(), map);
    let err = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::RecoveryFault(_)));
}

#[test]
fn mismatch_samples_capture_failing_cells() {
    let p = assemble(SUM).unwrap();
    // A lying master: predicts wrong s1 at the loop boundary.
    let liar = assemble(
        "main: addi s1, zero, 9999
         spin: addi s1, s1, 9999
               j spin",
    )
    .unwrap();
    let loop_pc = p.symbol("loop").unwrap();
    let mut map = BTreeMap::new();
    map.insert(p.entry(), liar.entry());
    map.insert(loop_pc, liar.symbol("spin").unwrap());
    let d = Distilled::from_parts(liar, BTreeSet::from([loop_pc]), map);
    let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
    engine.enable_mismatch_samples(16);
    let run = engine.run().unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq_s1(&p));
    let samples = run.mismatch_samples.unwrap();
    assert!(!samples.is_empty(), "lying master must produce samples");
    // The mismatching cell is s1 with the liar's arithmetic progression.
    assert!(samples[0]
        .cells
        .iter()
        .any(|(c, _, _)| matches!(c, mssp_machine::Cell::Reg(r) if *r == Reg::S1)));
}

#[test]
fn task_size_trace_sums_to_committed_instructions() {
    let p = assemble(SUM).unwrap();
    let d = honest(&p);
    let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
    engine.enable_task_size_trace();
    let run = engine.run().unwrap();
    let sizes = run.task_sizes.unwrap();
    let from_tasks: u64 = sizes.iter().sum();
    assert_eq!(
        from_tasks + run.stats.recovery_instructions,
        run.stats.committed_instructions
    );
}

#[test]
fn stats_helper_functions() {
    let p = assemble(SUM).unwrap();
    let d = honest(&p);
    let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap();
    let s = run.stats;
    assert_eq!(
        s.squash_events(),
        s.squashes_wrong_path + s.squashes_live_in + s.squashes_overrun + s.squashes_fault
    );
    assert!(s.waste_fraction() >= 0.0 && s.waste_fraction() <= 1.0);
    assert!(s.recovery_fraction() >= 0.0 && s.recovery_fraction() <= 1.0);
}

#[test]
fn single_instruction_program() {
    let p = assemble("main: halt").unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
    let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap();
    assert_eq!(run.stats.committed_instructions, 0);
}

#[test]
fn boundary_on_entry_pc_is_harmless() {
    let p = assemble(SUM).unwrap();
    let dead = assemble("main: halt").unwrap();
    let mut map = BTreeMap::new();
    map.insert(p.entry(), dead.entry());
    // Entry itself is a boundary: the first task must still make progress.
    let d = Distilled::from_parts(dead, BTreeSet::from([p.entry()]), map);
    let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap();
    assert_eq!(run.state.reg(Reg::S1), seq_s1(&p));
}

#[test]
fn word_granular_mode_is_correct_but_squashier() {
    // Byte-writing loop where adjacent tasks share words.
    let p = assemble(
        "main:  li   s2, 0x300000
                addi s0, zero, 2000
         loop:  andi t0, s0, 127
                add  t1, s2, s0
                sb   t0, 0(t1)
                add  s1, s1, t0
                addi s0, s0, -1
                bnez s0, loop
                halt",
    )
    .unwrap();
    let profile = Profile::collect(&p, u64::MAX).unwrap();
    let dcfg = DistillConfig {
        target_task_size: 24,
        ..DistillConfig::default()
    };
    let d = distill(&p, &profile, &dcfg).unwrap();
    let byte_cfg = EngineConfig::default();
    let word_cfg = EngineConfig {
        word_granular_live_ins: true,
        ..EngineConfig::default()
    };
    let byte_run = Engine::new(&p, &d, byte_cfg, UnitCost).run().unwrap();
    let word_run = Engine::new(&p, &d, word_cfg, UnitCost).run().unwrap();
    // Both are CORRECT — granularity is a performance knob only.
    assert_eq!(byte_run.state.reg(Reg::S1), seq_s1(&p));
    assert_eq!(word_run.state.reg(Reg::S1), seq_s1(&p));
    // But word granularity false-shares.
    assert!(
        word_run.stats.squash_events() > byte_run.stats.squash_events(),
        "word {} vs byte {}",
        word_run.stats.squash_events(),
        byte_run.stats.squash_events()
    );
}

#[test]
fn throttling_reduces_wasted_work_under_a_bad_master() {
    let p = assemble(SUM).unwrap();
    // A liar master spawning wrong predictions at the loop boundary.
    let liar = assemble(
        "main: addi s1, zero, 77
         spin: addi s1, s1, 77
               j spin",
    )
    .unwrap();
    let loop_pc = p.symbol("loop").unwrap();
    let mut map = BTreeMap::new();
    map.insert(p.entry(), liar.entry());
    map.insert(loop_pc, liar.symbol("spin").unwrap());
    let d = Distilled::from_parts(liar, BTreeSet::from([loop_pc]), map);
    let plain = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
        .run()
        .unwrap();
    let throttled_cfg = EngineConfig {
        throttle_threshold: 2,
        throttle_window: 16,
        throttle_duration: 8,
        ..EngineConfig::default()
    };
    let throttled = Engine::new(&p, &d, throttled_cfg, UnitCost).run().unwrap();
    assert_eq!(plain.state.reg(Reg::S1), seq_s1(&p));
    assert_eq!(throttled.state.reg(Reg::S1), seq_s1(&p));
    assert!(throttled.stats.throttle_events > 0);
    assert!(
        throttled.stats.wasted_slave_instructions < plain.stats.wasted_slave_instructions,
        "throttled waste {} vs plain {}",
        throttled.stats.wasted_slave_instructions,
        plain.stats.wasted_slave_instructions
    );
}
