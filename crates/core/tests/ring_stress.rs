//! Std-only stress suite for the lock-free rings in `mssp_core::ring`.
//!
//! The unit tests in the module cover the API contract; these tests
//! hammer the concurrency properties the threaded executor leans on:
//! wraparound exactly at the capacity boundary, full/empty races under
//! real thread interleavings, per-producer FIFO through the MPSC ring,
//! and drop-with-items-in-flight (no leaks, no double frees — checked
//! with a drop-counting payload).
//!
//! Iteration counts shrink under Miri (`cfg!(miri)`) so the CI
//! sanitizer job can interpret every access without timing out.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mssp_core::ring::{self, TryRecvError, TrySendError};

fn n(kind: u64) -> u64 {
    if cfg!(miri) { kind / 100 } else { kind }.max(16)
}

/// A payload whose drops are observable, for leak/double-free checks.
#[derive(Debug)]
struct Tracked {
    #[allow(dead_code)]
    value: u64,
    drops: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(value: u64, drops: &Arc<AtomicUsize>) -> Tracked {
        Tracked {
            value,
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn spsc_wraparound_at_capacity_boundary_preserves_fifo() {
    // Capacity rounds to a power of two; cross the boundary thousands of
    // times with bursts that never align to it, so every slot index and
    // every head/tail wrap is exercised.
    let (mut tx, mut rx) = ring::spsc::<u64>(4); // rounds to 4
    let mut next_send = 0u64;
    let mut next_recv = 0u64;
    let total = n(40_000);
    while next_recv < total {
        // Send 3 (coprime with 4), drain everything queued.
        for _ in 0..3 {
            if next_send < total {
                match tx.try_send(next_send) {
                    Ok(()) => next_send += 1,
                    Err(TrySendError::Full(_)) => break,
                    Err(TrySendError::Disconnected(_)) => unreachable!(),
                }
            }
        }
        while let Ok(v) = rx.try_recv() {
            assert_eq!(v, next_recv, "FIFO violated across wraparound");
            next_recv += 1;
        }
    }
    assert_eq!(next_recv, total);
}

#[test]
fn spsc_full_empty_race_under_threads() {
    // Tiny ring + two free-running threads: the producer constantly hits
    // Full, the consumer constantly hits Empty, and every message must
    // still arrive exactly once, in order.
    let (mut tx, mut rx) = ring::spsc::<u64>(8);
    let total = n(50_000);
    let producer = std::thread::spawn(move || {
        for i in 0..total {
            loop {
                match tx.try_send(i) {
                    Ok(()) => break,
                    Err(TrySendError::Full(_)) => std::thread::yield_now(),
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
        }
    });
    let mut expected = 0u64;
    while expected < total {
        match rx.try_recv() {
            Ok(v) => {
                assert_eq!(v, expected);
                expected += 1;
            }
            Err(TryRecvError::Empty) => std::thread::yield_now(),
            Err(TryRecvError::Disconnected) => break,
        }
    }
    producer.join().unwrap();
    assert_eq!(expected, total);
}

#[test]
fn spsc_blocking_batch_pipeline_under_threads() {
    // The executor's actual shape: blocking batch sends against a
    // parking batch receiver.
    let (mut tx, mut rx) = ring::spsc::<u64>(64);
    let total = n(100_000);
    let batch = 48;
    let producer = std::thread::spawn(move || {
        let mut sent = 0u64;
        while sent < total {
            let m = batch.min(total - sent);
            tx.send_batch((0..m).map(|i| sent + i)).unwrap();
            sent += m;
        }
    });
    let mut buf = Vec::new();
    let mut expected = 0u64;
    loop {
        buf.clear();
        if rx.recv_batch(&mut buf, 64) == 0 {
            match rx.recv() {
                Ok(v) => buf.push(v),
                Err(_) => break,
            }
        }
        for &v in &buf {
            assert_eq!(v, expected);
            expected += 1;
        }
    }
    producer.join().unwrap();
    assert_eq!(expected, total);
}

#[test]
fn spsc_drop_with_items_in_flight_frees_everything_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    // Drop the receiver first: queued items die with the ring.
    {
        let (mut tx, rx) = ring::spsc::<Tracked>(16);
        for i in 0..10 {
            tx.try_send(Tracked::new(i, &drops)).unwrap();
        }
        drop(rx);
        // A send after disconnect hands the value back; dropping the
        // error drops the value exactly once.
        assert!(matches!(
            tx.try_send(Tracked::new(99, &drops)),
            Err(TrySendError::Disconnected(_))
        ));
    }
    assert_eq!(drops.load(Ordering::Relaxed), 11, "receiver-first drop");

    // Drop the sender first: the receiver drains, then disconnects.
    drops.store(0, Ordering::Relaxed);
    {
        let (mut tx, mut rx) = ring::spsc::<Tracked>(16);
        for i in 0..10 {
            tx.try_send(Tracked::new(i, &drops)).unwrap();
        }
        drop(tx);
        for _ in 0..4 {
            rx.try_recv().unwrap();
        }
        assert_eq!(drops.load(Ordering::Relaxed), 4, "drained items dropped");
        // Six remain in flight when the receiver dies.
    }
    assert_eq!(drops.load(Ordering::Relaxed), 10, "sender-first drop");
}

#[test]
fn mpsc_drop_with_items_in_flight_frees_everything_once() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let (tx, mut rx) = ring::mpsc::<Tracked>(16);
        let tx2 = tx.clone();
        for i in 0..6 {
            tx.try_send(Tracked::new(i, &drops)).unwrap();
            tx2.try_send(Tracked::new(100 + i, &drops)).unwrap();
        }
        rx.try_recv().unwrap();
        rx.try_recv().unwrap();
        assert_eq!(drops.load(Ordering::Relaxed), 2);
        // 10 items still in flight; receiver dies before the senders.
        drop(rx);
        assert!(matches!(
            tx.try_send(Tracked::new(999, &drops)),
            Err(TrySendError::Disconnected(_))
        ));
    }
    assert_eq!(drops.load(Ordering::Relaxed), 13);
}

#[test]
fn mpsc_many_producers_race_without_loss_or_duplication() {
    let producers = 4u64;
    let per = n(20_000);
    let (tx, mut rx) = ring::mpsc::<u64>(32); // tiny: constant Full races
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in 0..per {
                    // Encode producer id in the high bits.
                    tx.send((p << 56) | i).unwrap();
                }
            })
        })
        .collect();
    drop(tx);
    // Per-producer FIFO: each producer's payloads arrive in its send
    // order even though producers interleave arbitrarily.
    let mut next = vec![0u64; producers as usize];
    let mut total = 0u64;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if rx.recv_batch(&mut buf, 64) == 0 {
            match rx.recv() {
                Ok(v) => buf.push(v),
                Err(_) => break,
            }
        }
        for &v in &buf {
            let p = (v >> 56) as usize;
            let i = v & ((1 << 56) - 1);
            assert_eq!(i, next[p], "per-producer FIFO violated for producer {p}");
            next[p] += 1;
            total += 1;
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(total, producers * per);
    assert!(next.iter().all(|&c| c == per));
}

#[test]
fn mpsc_blocking_recv_parks_and_wakes_across_bursts() {
    // Bursty producers with gaps force the consumer through its
    // park/unpark path repeatedly; nothing may be lost or reordered
    // per producer.
    let (tx, mut rx) = ring::mpsc::<u64>(8);
    let bursts = if cfg!(miri) { 5 } else { 50 };
    let per_burst = 16u64;
    let producer = std::thread::spawn(move || {
        for b in 0..bursts {
            for i in 0..per_burst {
                tx.send(b * per_burst + i).unwrap();
            }
            std::thread::yield_now();
        }
    });
    let mut expected = 0u64;
    while let Ok(v) = rx.recv() {
        assert_eq!(v, expected);
        expected += 1;
    }
    producer.join().unwrap();
    assert_eq!(expected, bursts * per_burst);
}

#[test]
fn capacity_is_a_real_bound() {
    // try_send must report Full at exactly the rounded capacity, and
    // recv must free exactly one slot.
    let (mut tx, mut rx) = ring::spsc::<u64>(5); // rounds up to 8
    for i in 0..8 {
        tx.try_send(i).unwrap();
    }
    assert!(matches!(tx.try_send(8), Err(TrySendError::Full(8))));
    assert_eq!(rx.try_recv().unwrap(), 0);
    tx.try_send(8).unwrap();
    assert!(matches!(tx.try_send(9), Err(TrySendError::Full(9))));
}
