//! Cost models: the seam between functional and timing simulation.
//!
//! The MSSP engine is generic over a [`CostModel`], so one orchestration
//! code path serves two purposes:
//!
//! * correctness work uses [`UnitCost`] (every instruction one cycle, free
//!   overheads), and
//! * the `mssp-timing` crate plugs in a detailed CMP model (scoreboard
//!   cores, caches, branch predictors, checkpoint/verify/commit latencies).
//!
//! Crucially, the *committed architected state* of a run is independent of
//! the cost model — costs reorder speculative work but commits are always
//! in program order. Integration tests assert this.

use mssp_machine::StepInfo;

/// Which core executed an instruction (lets models keep per-core state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRole {
    /// The master, executing the distilled program.
    Master,
    /// Slave `i`, executing a speculative task of the original program.
    Slave(usize),
    /// A slave executing a non-speculative recovery segment.
    Recovery(usize),
}

/// Per-event costs of an MSSP machine, in cycles.
///
/// Implementations must return **at least 1** from
/// [`CostModel::instr_cost`]; zero-cost instructions would let a component
/// act forever without advancing simulated time.
pub trait CostModel {
    /// Cost of executing one instruction on the given core.
    fn instr_cost(&mut self, role: CoreRole, info: &StepInfo) -> u64;

    /// Master-side overhead of taking a checkpoint of `cells` live cells.
    fn spawn_overhead(&mut self, cells: usize) -> u64 {
        let _ = cells;
        0
    }

    /// Latency from spawn until the slave can start executing (checkpoint
    /// transfer over the interconnect).
    fn dispatch_latency(&mut self, cells: usize) -> u64 {
        let _ = cells;
        0
    }

    /// Verify-unit cost of checking `live_ins` recorded cells.
    fn verify_cost(&mut self, live_ins: usize) -> u64 {
        let _ = live_ins;
        0
    }

    /// Verify-unit cost of atomically committing `live_outs` cells.
    fn commit_cost(&mut self, live_outs: usize) -> u64 {
        let _ = live_outs;
        0
    }

    /// Pipeline-flush penalty charged when the machine squashes.
    fn squash_penalty(&mut self) -> u64 {
        0
    }

    /// Called when a core's speculative state is squashed, so stateful
    /// models can flush per-core structures (e.g. dirty L1 lines).
    fn on_squash(&mut self, role: CoreRole) {
        let _ = role;
    }
}

/// The functional cost model: one cycle per instruction, free overheads.
///
/// Under `UnitCost` the reported cycle count of a run equals a
/// deterministic interleaving-step count; it exists to drive the engine's
/// *functional* behaviour, not to predict performance.
///
/// # Examples
///
/// ```
/// use mssp_core::{CoreRole, CostModel, UnitCost};
///
/// let mut c = UnitCost;
/// // All instruction costs are 1 under the functional model.
/// assert_eq!(c.verify_cost(100), 0);
/// assert_eq!(c.squash_penalty(), 0);
/// # let _ = CoreRole::Master;
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost;

impl CostModel for UnitCost {
    fn instr_cost(&mut self, _role: CoreRole, _info: &StepInfo) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::Instr;

    fn dummy_info() -> StepInfo {
        StepInfo {
            pc: 0,
            instr: Instr::Halt,
            next_pc: 0,
            halted: true,
            taken: None,
            mem: None,
        }
    }

    #[test]
    fn unit_cost_is_one_cycle_everywhere() {
        let mut c = UnitCost;
        assert_eq!(c.instr_cost(CoreRole::Master, &dummy_info()), 1);
        assert_eq!(c.instr_cost(CoreRole::Slave(3), &dummy_info()), 1);
        assert_eq!(c.instr_cost(CoreRole::Recovery(0), &dummy_info()), 1);
        assert_eq!(c.spawn_overhead(10), 0);
        assert_eq!(c.dispatch_latency(10), 0);
        assert_eq!(c.commit_cost(10), 0);
    }
}
