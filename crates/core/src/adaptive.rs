//! Online adaptive re-distillation: live profiling, divergence detection
//! and the tier state machine behind distilled-program hot-swap.
//!
//! The paper's soundness split — distillation is performance-only, the
//! verify/commit protocol alone guarantees correctness — makes replacing
//! the distilled program mid-run safe *by construction*: a hot-swap at a
//! task boundary abandons in-flight tasks exactly like a squash, and the
//! new master is just another untrusted prediction source. This module
//! supplies the policy side of that loop:
//!
//! * a **live [`Profile`]** fed from verified execution (recovery
//!   segments) plus squash feedback, with exponential decay so old
//!   program phases fade;
//! * a **divergence detector** comparing observed behaviour against the
//!   assumptions in the installed distillation (wrong-path/assert failure
//!   rate, overall squash rate, fraction of verified instructions landing
//!   in code the training profile called cold);
//! * a **tier state machine** mirroring a JIT's compilation levels: on
//!   divergence request a cheap DCE-only recompile ([`Tier::Fast`]) for
//!   quick relief, then — once the live profile has been stable for a
//!   configurable number of windows — the full pipeline ([`Tier::Full`]).
//!
//! The controller is executor-agnostic and purely stateful: executors
//! feed it observations, poll [`AdaptiveController::take_request`] at
//! swap-safe points (task boundaries), run the [`Recompiler`] either
//! inline (discrete engine, synchronous threaded mode) or on a background
//! thread (threaded executor), and report installs back. Candidate
//! programs must keep the pinned boundary set and crossing grouping —
//! [`AdaptiveController::validate_candidate`] rejects anything else —
//! so a swap changes only the master's fast path, never the slave
//! protocol. The recompiler itself is injected by callers (typically
//! `mssp-lint`'s `redistill_validated`, keeping every candidate behind
//! the full lint gate) so this crate stays independent of the linter.

use std::collections::BTreeSet;

use mssp_analysis::Profile;
use mssp_distill::{Distilled, Tier};
use mssp_isa::Reg;
use mssp_machine::StepInfo;

use crate::engine::{EngineStats, SquashReason};

/// A recompilation callback: given the controller's live profile and a
/// tier, produce a fresh distilled program (or a rendered error — lint
/// rejections land here). Callers wire this to `redistill_validated`
/// with the original program, distiller config and pinned boundary set
/// captured; the engine never learns about the linter.
pub type Recompiler = Box<dyn FnMut(&Profile, Tier) -> Result<Distilled, String> + Send>;

/// Controller thresholds and pacing.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Tasks (committed + squashed) per evaluation window.
    pub window_tasks: u64,
    /// Squash events within one window above which behaviour counts as
    /// divergent from the installed distillation.
    pub max_squashes_per_window: u64,
    /// Wrong-path squashes (failed branch assertions) within one window
    /// above which behaviour counts as divergent, independent of the
    /// all-cause squash budget.
    pub max_wrong_path_per_window: u64,
    /// Fraction of a window's verified instructions executed at PCs the
    /// training profile called cold (recovery segments walking code the
    /// master's image elided) above which behaviour counts as divergent.
    pub max_cold_fraction: f64,
    /// Consecutive non-divergent windows after a fast-tier install before
    /// the full-pipeline recompile is requested.
    pub stable_windows_for_full: u64,
    /// Apply one [`Profile::decay`] round to the live profile every this
    /// many windows (`0` disables decay).
    pub decay_every_windows: u64,
    /// Forced swap schedule for differential testing: at each listed
    /// committed-task count, request the paired tier regardless of the
    /// thresholds above. Entries must be sorted ascending.
    pub force_swap_at: Vec<(u64, Tier)>,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            window_tasks: 32,
            max_squashes_per_window: 3,
            max_wrong_path_per_window: 2,
            max_cold_fraction: 0.25,
            stable_windows_for_full: 2,
            decay_every_windows: 4,
            force_swap_at: Vec::new(),
        }
    }
}

/// Where the tier state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Running the offline distillation; divergence requests a fast-tier
    /// recompile.
    Watching,
    /// A recompile request is outstanding with the recompiler.
    Pending(Tier),
    /// A fast-tier program is installed; stable windows accumulate
    /// toward the full-tier recompile, divergence re-requests fast.
    FastInstalled,
    /// The full pipeline is installed; divergence restarts the cycle.
    FullInstalled,
}

/// One hot-swap install, with the stats counters frozen at that moment
/// so before/after behaviour (dynamic-instruction ratio, squash rate)
/// can be split per swap.
#[derive(Debug, Clone, Copy)]
pub struct SwapMarker {
    /// Which tier the installed program was compiled at.
    pub tier: Tier,
    /// Committed tasks at install time.
    pub at_committed_tasks: u64,
    /// Wall-clock microseconds from taking the request to install
    /// (recompile + validation + epoch bump).
    pub latency_micros: u64,
    /// Engine counters snapshotted at install.
    pub stats: EngineStats,
}

/// Summary of one adaptive run.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveReport {
    /// Fast-tier recompilations that produced a valid candidate.
    pub recompilations_fast: u64,
    /// Full-tier recompilations that produced a valid candidate.
    pub recompilations_full: u64,
    /// Recompilations the recompiler rejected (distillation error or
    /// lint-gate refusal).
    pub recompile_failures: u64,
    /// Candidates rejected for changing the pinned boundary set or the
    /// crossing grouping (must stay `0`; counted rather than asserted so
    /// a buggy recompiler degrades to the frozen program).
    pub candidates_rejected: u64,
    /// Hot-swaps actually installed, in order.
    pub swaps: Vec<SwapMarker>,
    /// Windows whose observed behaviour diverged from the installed
    /// distillation's assumptions.
    pub divergent_windows: u64,
    /// Evaluation windows completed.
    pub windows: u64,
}

impl AdaptiveReport {
    /// Total recompilations that produced a valid candidate.
    #[must_use]
    pub fn recompilations(&self) -> u64 {
        self.recompilations_fast + self.recompilations_full
    }

    /// Swaps installed.
    #[must_use]
    pub fn swaps_installed(&self) -> u64 {
        self.swaps.len() as u64
    }
}

/// The divergence detector and tier state machine. See the module docs
/// for the protocol; executors own one of these per adaptive run.
pub struct AdaptiveController {
    config: AdaptiveConfig,
    /// Live profile: seeded from the training profile (prior knowledge,
    /// decays away) and fed from verified recovery execution.
    live: Profile,
    /// PCs the training profile saw execute — the installed
    /// distillation's notion of "hot". Verified instructions outside
    /// this set are the cold-code divergence signal.
    hot_pcs: BTreeSet<u64>,
    /// Pinned task segmentation every candidate must preserve.
    boundaries: BTreeSet<u64>,
    crossings_per_task: u64,

    phase: Phase,
    pending_request: Option<Tier>,
    stable_run: u64,
    committed_tasks: u64,
    next_forced: usize,

    window_tasks: u64,
    window_squashes: u64,
    window_wrong_path: u64,
    window_task_instrs: u64,
    window_recovery_instrs: u64,
    window_cold_instrs: u64,

    report: AdaptiveReport,
}

impl std::fmt::Debug for AdaptiveController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveController")
            .field("phase", &self.phase)
            .field("committed_tasks", &self.committed_tasks)
            .field("windows", &self.report.windows)
            .field("swaps", &self.report.swaps.len())
            .finish_non_exhaustive()
    }
}

impl AdaptiveController {
    /// Builds a controller for a run starting from `distilled` (whose
    /// boundary set and crossing grouping become the pinned segmentation)
    /// trained on `training_profile` (whose executed-PC set defines
    /// "hot", and which seeds the live profile as decaying prior
    /// knowledge).
    #[must_use]
    pub fn new(
        config: AdaptiveConfig,
        distilled: &Distilled,
        training_profile: &Profile,
    ) -> AdaptiveController {
        AdaptiveController {
            config,
            live: training_profile.clone(),
            hot_pcs: training_profile.iter_exec().map(|(pc, _)| pc).collect(),
            boundaries: distilled.boundaries().clone(),
            crossings_per_task: distilled.crossings_per_task().max(1),
            phase: Phase::Watching,
            pending_request: None,
            stable_run: 0,
            committed_tasks: 0,
            next_forced: 0,
            window_tasks: 0,
            window_squashes: 0,
            window_wrong_path: 0,
            window_task_instrs: 0,
            window_recovery_instrs: 0,
            window_cold_instrs: 0,
            report: AdaptiveReport::default(),
        }
    }

    /// Feeds one verified instruction from a recovery segment into the
    /// live profile and the cold-code divergence signal. Recovery is the
    /// non-speculative path, so everything observed here is architected
    /// truth — exactly where a new program phase first shows up.
    pub fn observe_recovery_step(&mut self, info: &StepInfo) {
        if !info.halted {
            self.window_recovery_instrs += 1;
            if !self.hot_pcs.contains(&info.pc) {
                self.window_cold_instrs += 1;
            }
        }
        self.live.observe(info);
    }

    /// Records one completed recovery segment. Recovery segments advance
    /// the window clock like tasks do — otherwise a master lost in
    /// post-shift code (producing no tasks at all, only sequential
    /// recovery) would freeze the windows exactly when adaptation is
    /// most needed.
    pub fn observe_recovery_segment(&mut self) {
        self.bump_window();
    }

    /// Records one committed task (window clock + forced-swap schedule).
    pub fn observe_commit(&mut self, instructions: u64) {
        self.committed_tasks += 1;
        self.window_task_instrs += instructions;
        while let Some(&(at, tier)) = self.config.force_swap_at.get(self.next_forced) {
            if self.committed_tasks < at {
                break;
            }
            self.next_forced += 1;
            self.pending_request = Some(tier);
            self.phase = Phase::Pending(tier);
        }
        self.bump_window();
    }

    /// Records one squash event: window counters plus slice feedback into
    /// the live profile (`mark_wrong_path` for failed assertions,
    /// `mark_hard_live_in` for mispredicted registers).
    pub fn observe_squash(&mut self, reason: SquashReason, arch_pc: u64, mismatched: &[Reg]) {
        self.window_squashes += 1;
        if reason == SquashReason::WrongPath {
            self.window_wrong_path += 1;
            self.live.mark_wrong_path(arch_pc);
        }
        for &reg in mismatched {
            self.live.mark_hard_live_in(reg);
        }
        self.bump_window();
    }

    /// The outstanding recompile request, if any. Executors call this at
    /// swap-safe points (task boundaries) and hand the returned tier to
    /// the recompiler with a [`AdaptiveController::live_profile`]
    /// snapshot.
    pub fn take_request(&mut self) -> Option<Tier> {
        self.pending_request.take()
    }

    /// The live profile (snapshot/clone this for a background recompile).
    #[must_use]
    pub fn live_profile(&self) -> &Profile {
        &self.live
    }

    /// The pinned boundary set candidates must preserve.
    #[must_use]
    pub fn boundaries(&self) -> &BTreeSet<u64> {
        &self.boundaries
    }

    /// The pinned crossings-per-task grouping candidates must preserve.
    #[must_use]
    pub fn crossings_per_task(&self) -> u64 {
        self.crossings_per_task
    }

    /// Whether `candidate` preserves the pinned task segmentation. A
    /// candidate that fails is dropped (and counted) — installing it
    /// would change the slave protocol mid-run.
    #[must_use]
    pub fn validate_candidate(&self, candidate: &Distilled) -> bool {
        *candidate.boundaries() == self.boundaries
            && candidate.crossings_per_task().max(1) == self.crossings_per_task
    }

    /// Reports a recompilation outcome. On success the executor is
    /// expected to install the candidate and then call
    /// [`AdaptiveController::note_swap_installed`]; on failure the state
    /// machine re-arms so a later divergent window can retry.
    pub fn note_recompiled(&mut self, tier: Tier, ok: bool) {
        if ok {
            match tier {
                Tier::Fast => self.report.recompilations_fast += 1,
                Tier::Full => self.report.recompilations_full += 1,
            }
        } else {
            self.report.recompile_failures += 1;
            if self.phase == Phase::Pending(tier) {
                self.phase = Phase::Watching;
            }
        }
    }

    /// Reports a candidate rejected by
    /// [`AdaptiveController::validate_candidate`]; re-arms like a failed
    /// recompilation.
    pub fn note_candidate_rejected(&mut self, tier: Tier) {
        self.report.candidates_rejected += 1;
        if self.phase == Phase::Pending(tier) {
            self.phase = Phase::Watching;
        }
    }

    /// Reports a hot-swap install, freezing `stats` into the report so
    /// before/after behaviour can be split at this marker.
    pub fn note_swap_installed(&mut self, tier: Tier, latency_micros: u64, stats: EngineStats) {
        self.report.swaps.push(SwapMarker {
            tier,
            at_committed_tasks: self.committed_tasks,
            latency_micros,
            stats,
        });
        self.phase = match tier {
            Tier::Fast => Phase::FastInstalled,
            Tier::Full => Phase::FullInstalled,
        };
        self.stable_run = 0;
        // The swap resets the behavioural baseline: stale window counts
        // describe the *previous* program.
        self.reset_window();
    }

    /// The report so far (executors embed the final value in their run
    /// result).
    #[must_use]
    pub fn report(&self) -> &AdaptiveReport {
        &self.report
    }

    /// Consumes the controller into its report.
    #[must_use]
    pub fn into_report(self) -> AdaptiveReport {
        self.report
    }

    // ---- window machinery ------------------------------------------------

    fn bump_window(&mut self) {
        self.window_tasks += 1;
        if self.window_tasks >= self.config.window_tasks.max(1) {
            self.end_window();
        }
    }

    fn end_window(&mut self) {
        self.report.windows += 1;
        let verified = self.window_task_instrs + self.window_recovery_instrs;
        let cold_fraction = if verified == 0 {
            0.0
        } else {
            self.window_cold_instrs as f64 / verified as f64
        };
        let diverged = self.window_squashes > self.config.max_squashes_per_window
            || self.window_wrong_path > self.config.max_wrong_path_per_window
            || cold_fraction > self.config.max_cold_fraction;
        if diverged {
            self.report.divergent_windows += 1;
        }
        match (self.phase, diverged) {
            // Divergence from any installed program requests quick relief.
            (Phase::Watching | Phase::FastInstalled | Phase::FullInstalled, true) => {
                self.stable_run = 0;
                self.pending_request = Some(Tier::Fast);
                self.phase = Phase::Pending(Tier::Fast);
            }
            // A stable stretch after fast relief earns the full pipeline.
            (Phase::FastInstalled, false) => {
                self.stable_run += 1;
                if self.stable_run >= self.config.stable_windows_for_full.max(1) {
                    self.pending_request = Some(Tier::Full);
                    self.phase = Phase::Pending(Tier::Full);
                }
            }
            _ => {}
        }
        if self.config.decay_every_windows > 0
            && self
                .report
                .windows
                .is_multiple_of(self.config.decay_every_windows)
        {
            self.live.decay();
        }
        self.reset_window();
    }

    fn reset_window(&mut self) {
        self.window_tasks = 0;
        self.window_squashes = 0;
        self.window_wrong_path = 0;
        self.window_task_instrs = 0;
        self.window_recovery_instrs = 0;
        self.window_cold_instrs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_isa::asm::assemble;
    use std::collections::BTreeMap;

    fn controller(config: AdaptiveConfig) -> AdaptiveController {
        let p = assemble(
            "main: addi s0, zero, 50
             loop: addi s1, s1, 1
                   addi s0, s0, -1
                   bnez s0, loop
                   halt",
        )
        .unwrap();
        let prof = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
        let boundary = p.symbol("loop").unwrap();
        let d = Distilled::from_parts(
            p.clone(),
            BTreeSet::from([boundary]),
            BTreeMap::from([(p.entry(), p.entry()), (boundary, boundary)]),
        );
        AdaptiveController::new(config, &d, &prof)
    }

    fn quiet_commits(ctl: &mut AdaptiveController, n: u64) {
        for _ in 0..n {
            ctl.observe_commit(100);
        }
    }

    #[test]
    fn stationary_behaviour_requests_nothing() {
        let mut ctl = controller(AdaptiveConfig::default());
        quiet_commits(&mut ctl, 1000);
        assert!(ctl.take_request().is_none());
        assert_eq!(ctl.report().divergent_windows, 0);
        assert!(ctl.report().windows > 10);
    }

    #[test]
    fn squash_storm_requests_fast_then_stability_earns_full() {
        let config = AdaptiveConfig {
            window_tasks: 8,
            max_squashes_per_window: 2,
            stable_windows_for_full: 2,
            ..AdaptiveConfig::default()
        };
        let mut ctl = controller(config);
        // A divergent window: 4 wrong-path squashes among 8 tasks.
        for _ in 0..4 {
            ctl.observe_squash(SquashReason::WrongPath, 0x1234, &[]);
        }
        quiet_commits(&mut ctl, 4);
        assert_eq!(ctl.take_request(), Some(Tier::Fast));
        assert!(ctl.take_request().is_none(), "request is one-shot");
        assert!(ctl.live_profile().wrong_path_pcs().contains(&0x1234));
        // While pending, further windows request nothing.
        quiet_commits(&mut ctl, 16);
        assert!(ctl.take_request().is_none());
        // Install lands; two clean windows later the full tier is due.
        ctl.note_recompiled(Tier::Fast, true);
        ctl.note_swap_installed(Tier::Fast, 0, EngineStats::default());
        quiet_commits(&mut ctl, 16);
        assert_eq!(ctl.take_request(), Some(Tier::Full));
        ctl.note_recompiled(Tier::Full, true);
        ctl.note_swap_installed(Tier::Full, 0, EngineStats::default());
        assert_eq!(ctl.report().recompilations(), 2);
        assert_eq!(ctl.report().swaps_installed(), 2);
        // Re-divergence from the full program restarts the cycle.
        for _ in 0..4 {
            ctl.observe_squash(SquashReason::LiveInMismatch, 0, &[Reg::S2]);
        }
        quiet_commits(&mut ctl, 4);
        assert_eq!(ctl.take_request(), Some(Tier::Fast));
        assert!(ctl.live_profile().hard_live_ins().contains(&Reg::S2));
    }

    #[test]
    fn cold_code_fraction_alone_trips_divergence() {
        let config = AdaptiveConfig {
            window_tasks: 4,
            max_cold_fraction: 0.25,
            ..AdaptiveConfig::default()
        };
        let mut ctl = controller(config);
        // Recovery walks PCs the training profile never saw — enough of
        // them to dominate the window's 4 x 100 committed instructions.
        for i in 0..300u64 {
            let info = StepInfo {
                pc: 0x9000 + i * 4,
                instr: mssp_isa::Instr::Addi(Reg::ZERO, Reg::ZERO, 0),
                next_pc: 0x9000 + i * 4 + 4,
                halted: false,
                taken: None,
                mem: None,
            };
            ctl.observe_recovery_step(&info);
        }
        quiet_commits(&mut ctl, 4);
        assert_eq!(ctl.take_request(), Some(Tier::Fast));
        assert_eq!(ctl.report().divergent_windows, 1);
    }

    #[test]
    fn failed_recompile_rearms_the_state_machine() {
        let config = AdaptiveConfig {
            window_tasks: 4,
            max_squashes_per_window: 1,
            ..AdaptiveConfig::default()
        };
        let mut ctl = controller(config);
        for _ in 0..4 {
            ctl.observe_squash(SquashReason::WrongPath, 0, &[]);
        }
        assert_eq!(ctl.take_request(), Some(Tier::Fast));
        ctl.note_recompiled(Tier::Fast, false);
        assert_eq!(ctl.report().recompile_failures, 1);
        // Next divergent window can retry.
        for _ in 0..4 {
            ctl.observe_squash(SquashReason::WrongPath, 0, &[]);
        }
        assert_eq!(ctl.take_request(), Some(Tier::Fast));
    }

    #[test]
    fn forced_schedule_fires_at_committed_task_counts() {
        let config = AdaptiveConfig {
            force_swap_at: vec![(3, Tier::Fast), (6, Tier::Full)],
            ..AdaptiveConfig::default()
        };
        let mut ctl = controller(config);
        quiet_commits(&mut ctl, 2);
        assert!(ctl.take_request().is_none());
        quiet_commits(&mut ctl, 1);
        assert_eq!(ctl.take_request(), Some(Tier::Fast));
        ctl.note_recompiled(Tier::Fast, true);
        ctl.note_swap_installed(Tier::Fast, 0, EngineStats::default());
        quiet_commits(&mut ctl, 3);
        assert_eq!(ctl.take_request(), Some(Tier::Full));
        assert_eq!(ctl.report().swaps[0].at_committed_tasks, 3);
    }

    #[test]
    fn candidate_validation_pins_segmentation() {
        let ctl = controller(AdaptiveConfig::default());
        let p = assemble("main: halt").unwrap();
        let wrong = Distilled::from_parts(p, BTreeSet::from([0xdead]), BTreeMap::new());
        assert!(!ctl.validate_candidate(&wrong));
    }
}
