//! A small std-only MPMC channel (`Mutex<VecDeque>` + `Condvar`).
//!
//! This was the threaded executor's only queue before the lock-free
//! rings in [`crate::ring`] took over the task/result hot path; it
//! remains the general-purpose fallback for low-rate, many-to-many
//! control traffic (the rings are strictly single-consumer), and the
//! mutex baseline that `bench_contention` measures the rings against.
//! The container this repository builds in has no crate registry, so
//! instead of `crossbeam` we use this ~100-line channel with the same
//! close semantics: `recv` drains remaining messages after all senders
//! drop, then reports disconnection; `send` fails once every receiver
//! is gone.

use std::collections::VecDeque;
use std::sync::Arc;

// The Mutex/Condvar pair comes through the `sync` seam so the model
// checker (feature `model-check`) can explore the wakeup orderings; the
// production build re-exports plain `std::sync` types.
use crate::sync::{Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// The sending half; clone freely across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely across threads (each message is
/// delivered to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// A blocking receive failed: every sender was dropped and the queue
/// has been fully drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty but senders remain.
    Empty,
    /// The queue is empty and every sender has been dropped.
    Disconnected,
}

/// Creates a connected channel pair.
#[must_use]
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; returns it back as `Err` if every receiver is
    /// gone (the message would never be seen).
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when no receiver remains.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(value);
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they observe disconnection.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next message; [`RecvError`] once the channel is
    /// empty and all senders have been dropped.
    ///
    /// The queue is always re-checked ahead of the sender count — both
    /// on entry and after every `Condvar` wakeup. The ordering is load-
    /// bearing: a sender that enqueues its final message and drops in
    /// the same instant wakes this thread with *both* "message ready"
    /// and "disconnected" true, and testing disconnection first would
    /// lose that message forever. Disconnection is only reported once
    /// the queue has been drained.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and closed.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            #[cfg(feature = "model-check")]
            if crate::mutation::armed(&crate::mutation::CHAN_DISCONNECT_BEFORE_DRAIN) {
                // Deliberately-broken mutant for the checker's teeth
                // tests: testing disconnection first loses a final
                // message that arrived with the closing notification.
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                inner = self.shared.ready.wait(inner).expect("channel poisoned");
                continue;
            }
            // Drain before disconnect — see above.
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.ready.wait(inner).expect("channel poisoned");
        }
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when no message is queued but senders
    /// remain; [`TryRecvError::Disconnected`] once the channel is empty
    /// and closed (pending messages are still drained first).
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if let Some(value) = inner.queue.pop_front() {
            Ok(value)
        } else if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_fifo_order() {
        let (tx, rx) = channel();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_drains_then_reports_disconnect() {
        let (tx, rx) = channel();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_recv_empty_while_senders_alive() {
        let (tx, rx) = channel::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel();
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn competitive_consumption_across_threads() {
        let (tx, rx) = channel();
        let n = 1000u64;
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 1..=n {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, n * (n + 1) / 2);
    }

    #[test]
    fn blocked_recv_wakes_on_send() {
        let (tx, rx) = channel();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }

    /// Hammers the exact race `recv` documents: a sender that enqueues
    /// its final message and drops in the same instant. The blocked
    /// receiver is woken with "message queued" and "all senders gone"
    /// simultaneously true; draining before the disconnect check means
    /// the final message can never be lost. Run enough rounds that the
    /// send+drop reliably lands inside the receiver's wait window.
    #[test]
    fn final_message_survives_send_then_immediate_disconnect() {
        let rounds: u64 = if cfg!(miri) { 50 } else { 2000 };
        for round in 0..rounds {
            let (tx, rx) = channel();
            let receiver = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            // Enqueue the final message and sever the channel back to
            // back, racing the receiver's wakeup path.
            let sender = std::thread::spawn(move || {
                tx.send(round).unwrap();
                drop(tx);
            });
            sender.join().unwrap();
            let got = receiver.join().unwrap();
            assert_eq!(got, vec![round], "round {round} lost its final message");
        }
    }

    /// Same race, many senders: every sender's last message must be
    /// delivered even though the channel disconnects while receivers
    /// are mid-drain.
    #[test]
    fn no_message_lost_across_mass_disconnect() {
        let rounds = if cfg!(miri) { 10 } else { 200 };
        for _ in 0..rounds {
            let (tx, rx) = channel();
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        tx.send(i).unwrap();
                        // tx drops here; one of these drops flips the
                        // channel to disconnected at the same instant
                        // its message lands.
                    })
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for h in handles {
                h.join().unwrap();
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
