//! Tasks: the unit of speculative work, with live-in/live-out capture.
//!
//! A task executes a segment of the **original** program on a slave,
//! reading through a layered view of machine state:
//!
//! 1. its own writes (the live-out set under construction),
//! 2. previously recorded live-ins (so re-reads are repeatable even while
//!    older tasks commit underneath),
//! 3. the master's checkpoint overlay (predicted values for cells the
//!    master believes it modified since the last committed point),
//! 4. optionally a *committed view* — one folded [`Delta`] of writes
//!    committed after the base snapshot was taken (the threaded
//!    executor ships this instead of a chain of per-commit deltas), and
//! 5. the architected state.
//!
//! Every read satisfied below layer 1 is recorded as a live-in `(cell,
//! value)`. At commit time, the verify unit re-checks each recorded value
//! against architected state — the memoization test of the paper — which
//! makes the task's execution *safe* in the formal sense: consistency +
//! completeness ⇒ committing it advances architected state exactly as the
//! sequential machine would (Theorem 2).

use std::collections::BTreeSet;
use std::sync::Arc;

use mssp_isa::{Program, Reg};
use mssp_machine::{expand_mask, step, Cell, Delta, MachineState, Storage};

/// Unique task identity, increasing in spawn (= program) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

/// How a finished task ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEnd {
    /// Reached a task-boundary PC; carries the end PC (the expected start
    /// of the next task).
    Boundary(u64),
    /// Executed `halt`; carries the halt PC.
    Halted(u64),
    /// Exceeded the task instruction cap without reaching a boundary
    /// (typically a mis-steered task); always squashes.
    Overrun,
    /// Faulted (e.g. jumped outside the text segment after consuming a
    /// garbage prediction); always squashes.
    Fault,
}

/// Execution status of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Still executing on its slave.
    Running,
    /// Finished; result available at `done_at` (simulated time).
    Done {
        /// How it ended.
        end: TaskEnd,
        /// Simulated cycle at which the result reached the verify unit.
        done_at: u64,
    },
}

/// A speculative task.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task identity (spawn order).
    pub id: TaskId,
    /// Original-program PC the task starts at.
    pub start_pc: u64,
    /// Current PC while running.
    pub pc: u64,
    /// Slave core executing this task.
    pub slave: usize,
    /// Master-predicted overlay, newest segment first.
    pub overlay: Vec<Arc<Delta>>,
    /// Cells whose overlay values were injected by the live-in value
    /// predictor rather than produced by the master (metrics only: the
    /// verify unit treats them like any other overlay-sourced live-in).
    pub predicted: Vec<Cell>,
    /// Recorded live-ins.
    pub live_ins: Delta,
    /// Accumulated writes (live-outs).
    pub writes: Delta,
    /// Instructions executed so far.
    pub executed: u64,
    /// Boundary crossings seen so far (a task ends at the Nth).
    pub crossings: u64,
    /// Execution status.
    pub status: TaskStatus,
}

impl Task {
    /// Creates a freshly spawned task.
    #[must_use]
    pub fn new(id: TaskId, start_pc: u64, slave: usize, overlay: Vec<Arc<Delta>>) -> Task {
        Task::with_buffers(id, start_pc, slave, overlay, Delta::new(), Delta::new())
    }

    /// Creates a freshly spawned task reusing pooled live-in/write
    /// buffers (the threaded executor's allocation-free dispatch path
    /// takes them from a [`mssp_machine::DeltaArena`]). Both buffers
    /// must be empty; their backing capacity is what gets recycled.
    #[must_use]
    pub fn with_buffers(
        id: TaskId,
        start_pc: u64,
        slave: usize,
        overlay: Vec<Arc<Delta>>,
        live_ins: Delta,
        writes: Delta,
    ) -> Task {
        debug_assert!(live_ins.is_empty() && writes.is_empty());
        Task {
            id,
            start_pc,
            pc: start_pc,
            slave,
            overlay,
            predicted: Vec::new(),
            live_ins,
            writes,
            executed: 0,
            crossings: 0,
            status: TaskStatus::Running,
        }
    }

    /// Whether the task has finished (successfully or not).
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.status, TaskStatus::Done { .. })
    }

    /// A [`Storage`] view for executing one instruction of this task
    /// against the given architected state.
    pub fn storage<'a>(&'a mut self, arch: &'a MachineState) -> TaskStorage<'a> {
        self.storage_with_granularity(arch, false)
    }

    /// Runs this task to its natural end against an **immutable snapshot**
    /// of architected state — the checkpoint the coordinator published
    /// when the task was spawned. This is the threaded executor's hot
    /// loop: it touches no shared state at all (the snapshot is a plain
    /// `&MachineState`, typically borrowed out of an `Arc`), so workers
    /// execute entire segments with zero lock traffic.
    ///
    /// `abandon` is polled at the points where holding on to doomed work
    /// costs the most: once on entry (immediately after the snapshot was
    /// captured — a squash may already have invalidated this epoch), at
    /// every boundary crossing, and every 64 instructions. Returning
    /// `true` ends the task as [`TaskEnd::Overrun`], which always
    /// squashes; a stale task's result is discarded by epoch anyway, so
    /// no dedicated "abandoned" variant is needed.
    pub fn run_segment(
        &mut self,
        program: &Program,
        snapshot: &MachineState,
        rules: &SegmentRules<'_>,
        abandon: impl FnMut() -> bool,
    ) -> TaskEnd {
        self.run_segment_with_view(program, snapshot, None, rules, abandon)
    }

    /// [`Task::run_segment`] with an optional *committed view*: one
    /// folded delta of everything committed after `snapshot` was taken,
    /// layered between the prediction overlay and the snapshot. Reads
    /// satisfied from it are recorded as live-ins exactly like snapshot
    /// reads, so verification semantics are unchanged — the view merely
    /// keeps the task's picture of architected state fresh without
    /// materializing a new snapshot.
    pub fn run_segment_with_view(
        &mut self,
        program: &Program,
        snapshot: &MachineState,
        committed: Option<&Delta>,
        rules: &SegmentRules<'_>,
        mut abandon: impl FnMut() -> bool,
    ) -> TaskEnd {
        if abandon() {
            return TaskEnd::Overrun;
        }
        loop {
            let pc = self.pc;
            let result = {
                let mut storage = self.storage_with_view(snapshot, committed, false);
                step(&mut storage, program, pc)
            };
            match result {
                Err(_) => return TaskEnd::Fault,
                Ok(info) => {
                    if info.halted {
                        return TaskEnd::Halted(pc);
                    }
                    self.executed += 1;
                    self.pc = info.next_pc;
                    if rules.boundaries.contains(info.next_pc) {
                        self.crossings += 1;
                        if abandon() {
                            return TaskEnd::Overrun;
                        }
                        if self.crossings >= rules.crossings_per_task {
                            return TaskEnd::Boundary(info.next_pc);
                        }
                    }
                    if self.executed >= rules.max_instrs {
                        return TaskEnd::Overrun;
                    }
                    if self.executed.is_multiple_of(64) && abandon() {
                        return TaskEnd::Overrun;
                    }
                }
            }
        }
    }

    /// Like [`Task::storage`], optionally degrading live-in tracking to
    /// whole-word granularity (the ablation of byte masking: sub-word
    /// stores read-modify-write their containing word and record it
    /// entirely as a live-in, recreating false sharing between adjacent
    /// tasks).
    pub fn storage_with_granularity<'a>(
        &'a mut self,
        arch: &'a MachineState,
        word_granular: bool,
    ) -> TaskStorage<'a> {
        self.storage_with_view(arch, None, word_granular)
    }

    /// The fully general storage view: architected snapshot, optional
    /// committed-view delta, and the granularity ablation switch.
    pub fn storage_with_view<'a>(
        &'a mut self,
        arch: &'a MachineState,
        committed: Option<&'a Delta>,
        word_granular: bool,
    ) -> TaskStorage<'a> {
        TaskStorage {
            writes: &mut self.writes,
            live_ins: &mut self.live_ins,
            overlay: &self.overlay,
            committed,
            arch,
            word_granular,
        }
    }
}

/// When a task segment ends: the boundary-crossing quota and the
/// instruction cap, shared by speculative execution and recovery.
#[derive(Debug, Clone, Copy)]
pub struct SegmentRules<'a> {
    /// Task-boundary PCs of the distilled program.
    pub boundaries: &'a BoundarySet,
    /// A task ends at its Nth boundary crossing.
    pub crossings_per_task: u64,
    /// Instruction cap; exceeding it is an overrun (always squashes).
    pub max_instrs: u64,
}

/// The layered, live-in-recording storage a slave executes against.
///
/// See the crate documentation for the read path. Writes go only
/// to the task's private write buffer — slaves can never touch architected
/// state, which is the structural reason the fast path cannot compromise
/// correctness.
#[derive(Debug)]
pub struct TaskStorage<'a> {
    writes: &'a mut Delta,
    live_ins: &'a mut Delta,
    overlay: &'a [Arc<Delta>],
    committed: Option<&'a Delta>,
    arch: &'a MachineState,
    word_granular: bool,
}

impl TaskStorage<'_> {
    /// Gathers the requested bytes of `cell`, layer by layer, recording
    /// as live-ins exactly the bytes that had to come from below the
    /// task's own writes.
    fn read_cell_masked(&mut self, cell: Cell, mask: u8) -> u64 {
        let mut out = 0u64;
        let mut need = mask;
        if let Some(w) = self.writes.get_masked(cell) {
            let take = need & w.mask;
            out |= w.value & expand_mask(take);
            need &= !take;
        }
        if need != 0 {
            if let Some(r) = self.live_ins.get_masked(cell) {
                let take = need & r.mask;
                out |= r.value & expand_mask(take);
                need &= !take;
            }
        }
        if need != 0 {
            for seg in self.overlay {
                let Some(p) = seg.get_masked(cell) else {
                    continue;
                };
                let take = need & p.mask;
                if take != 0 {
                    let bytes = p.value & expand_mask(take);
                    out |= bytes;
                    self.live_ins.record_bytes(cell, bytes, take);
                    need &= !take;
                }
                if need == 0 {
                    break;
                }
            }
        }
        if need != 0 {
            if let Some(cm) = self.committed.and_then(|c| c.get_masked(cell)) {
                let take = need & cm.mask;
                if take != 0 {
                    let bytes = cm.value & expand_mask(take);
                    out |= bytes;
                    self.live_ins.record_bytes(cell, bytes, take);
                    need &= !take;
                }
            }
        }
        if need != 0 {
            let bytes = self.arch.read_cell(cell) & expand_mask(need);
            out |= bytes;
            self.live_ins.record_bytes(cell, bytes, need);
        }
        out
    }
}

impl Storage for TaskStorage<'_> {
    fn read_reg(&mut self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.read_cell_masked(Cell::Reg(r), 0xFF)
        }
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.writes.set(Cell::Reg(r), value);
        }
    }

    fn load_word(&mut self, widx: u64) -> u64 {
        self.read_cell_masked(Cell::Mem(widx), 0xFF)
    }

    fn load_word_masked(&mut self, widx: u64, mask: u8) -> u64 {
        let mask = if self.word_granular { 0xFF } else { mask };
        self.read_cell_masked(Cell::Mem(widx), mask)
    }

    fn store_word(&mut self, widx: u64, value: u64) {
        self.writes.set(Cell::Mem(widx), value);
    }

    fn store_word_masked(&mut self, widx: u64, value: u64, mask: u8) {
        if self.word_granular && mask != 0xFF {
            // Ablation mode: classic read-modify-write of the whole word,
            // recording a full-word live-in (false sharing included).
            let em = mssp_machine::expand_mask(mask);
            let old = self.read_cell_masked(Cell::Mem(widx), 0xFF);
            self.writes.set(Cell::Mem(widx), (old & !em) | (value & em));
        } else {
            // Byte-masked buffering: no read of the underlying word, hence
            // no false live-in on bytes this task never touches.
            self.writes.set_bytes(Cell::Mem(widx), value, mask);
        }
    }
}

/// Storage for a non-speculative recovery segment: reads see the task's
/// own writes over architected state directly (no prediction overlay, no
/// live-in recording — the values *are* correct by construction), writes
/// are buffered for one atomic commit at segment end.
#[derive(Debug)]
pub struct RecoveryStorage<'a> {
    /// The recovery segment's private write buffer.
    pub writes: &'a mut Delta,
    /// The architected state being read through.
    pub arch: &'a MachineState,
}

impl Storage for RecoveryStorage<'_> {
    fn read_reg(&mut self, r: Reg) -> u64 {
        if r.is_zero() {
            return 0;
        }
        self.writes
            .get(Cell::Reg(r))
            .unwrap_or_else(|| self.arch.reg(r))
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.writes.set(Cell::Reg(r), value);
        }
    }

    fn load_word(&mut self, widx: u64) -> u64 {
        self.writes
            .get(Cell::Mem(widx))
            .unwrap_or_else(|| self.arch.load_word(widx))
    }

    fn store_word(&mut self, widx: u64, value: u64) {
        self.writes.set(Cell::Mem(widx), value);
    }
}

/// A static set of task-boundary PCs with the end-of-task test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BoundarySet {
    pcs: BTreeSet<u64>,
}

impl BoundarySet {
    /// Creates a boundary set from original-program PCs.
    #[must_use]
    pub fn new(pcs: BTreeSet<u64>) -> BoundarySet {
        BoundarySet { pcs }
    }

    /// Whether `pc` is a task boundary.
    #[must_use]
    pub fn contains(&self, pc: u64) -> bool {
        self.pcs.contains(&pc)
    }

    /// The underlying PC set.
    #[must_use]
    pub fn pcs(&self) -> &BTreeSet<u64> {
        &self.pcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(pairs: &[(Cell, u64)]) -> Arc<Delta> {
        Arc::new(pairs.iter().copied().collect())
    }

    #[test]
    fn reads_layer_in_priority_order() {
        let mut arch = MachineState::new();
        arch.store_word(1, 100);
        arch.store_word(2, 200);
        arch.store_word(3, 300);
        let overlay = vec![
            delta(&[(Cell::Mem(2), 222)]),                      // newest segment
            delta(&[(Cell::Mem(2), 211), (Cell::Mem(3), 333)]), // older
        ];
        let mut task = Task::new(TaskId(0), 0x100, 0, overlay);
        let mut st = task.storage(&arch);
        assert_eq!(st.load_word(1), 100); // from arch
        assert_eq!(st.load_word(2), 222); // newest overlay wins
        assert_eq!(st.load_word(3), 333); // older overlay
        st.store_word(1, 111);
        assert_eq!(st.load_word(1), 111); // own write wins
    }

    #[test]
    fn live_ins_record_first_observed_value() {
        let mut arch = MachineState::new();
        arch.store_word(5, 50);
        let mut task = Task::new(TaskId(0), 0, 0, Vec::new());
        {
            let mut st = task.storage(&arch);
            assert_eq!(st.load_word(5), 50);
        }
        // Architected state changes (an older task committed).
        arch.store_word(5, 51);
        {
            let mut st = task.storage(&arch);
            // The task re-reads its recorded live-in, not the new value:
            // its view stays internally consistent.
            assert_eq!(st.load_word(5), 50);
        }
        assert_eq!(task.live_ins.get(Cell::Mem(5)), Some(50));
        // ...and verification against the *current* state now fails.
        assert!(!task.live_ins.consistent_with_state(&arch));
    }

    #[test]
    fn committed_view_layers_between_overlay_and_arch() {
        let mut arch = MachineState::new();
        arch.store_word(1, 100);
        arch.store_word(2, 200);
        let overlay = vec![delta(&[(Cell::Mem(2), 222)])];
        let committed: Delta = [(Cell::Mem(1), 111), (Cell::Mem(2), 211)]
            .into_iter()
            .collect();
        let mut task = Task::new(TaskId(0), 0, 0, overlay);
        {
            let mut st = task.storage_with_view(&arch, Some(&committed), false);
            assert_eq!(st.load_word(2), 222); // prediction overlay wins
            assert_eq!(st.load_word(1), 111); // committed view over arch
            assert_eq!(st.load_word(3), 0); // falls through to arch
        }
        // View reads are live-ins: they face the memoization test like
        // any other read from below the task's own writes.
        assert_eq!(task.live_ins.get(Cell::Mem(1)), Some(111));
        assert_eq!(task.live_ins.get(Cell::Mem(2)), Some(222));
    }

    #[test]
    fn own_writes_are_not_live_ins() {
        let arch = MachineState::new();
        let mut task = Task::new(TaskId(0), 0, 0, Vec::new());
        {
            let mut st = task.storage(&arch);
            st.write_reg(Reg::A0, 9);
            assert_eq!(st.read_reg(Reg::A0), 9);
        }
        assert!(task.live_ins.is_empty());
        assert_eq!(task.writes.get(Cell::Reg(Reg::A0)), Some(9));
    }

    #[test]
    fn overlay_reads_are_recorded_as_live_ins() {
        let arch = MachineState::new();
        let overlay = vec![delta(&[(Cell::Reg(Reg::A1), 7)])];
        let mut task = Task::new(TaskId(0), 0, 0, overlay);
        {
            let mut st = task.storage(&arch);
            assert_eq!(st.read_reg(Reg::A1), 7);
        }
        // The predicted value is a live-in: it must match architected
        // state at commit or the task squashes.
        assert_eq!(task.live_ins.get(Cell::Reg(Reg::A1)), Some(7));
        assert!(!task.live_ins.consistent_with_state(&arch)); // arch has 0
    }

    #[test]
    fn zero_register_is_never_recorded() {
        let arch = MachineState::new();
        let mut task = Task::new(TaskId(0), 0, 0, Vec::new());
        {
            let mut st = task.storage(&arch);
            assert_eq!(st.read_reg(Reg::ZERO), 0);
            st.write_reg(Reg::ZERO, 5);
        }
        assert!(task.live_ins.is_empty());
        assert!(task.writes.is_empty());
    }

    #[test]
    fn recovery_storage_reads_through_and_buffers_writes() {
        let mut arch = MachineState::new();
        arch.set_reg(Reg::A0, 4);
        let mut writes = Delta::new();
        let mut st = RecoveryStorage {
            writes: &mut writes,
            arch: &arch,
        };
        assert_eq!(st.read_reg(Reg::A0), 4);
        st.write_reg(Reg::A0, 5);
        assert_eq!(st.read_reg(Reg::A0), 5);
        // Arch untouched until the atomic commit.
        assert_eq!(arch.reg(Reg::A0), 4);
        assert_eq!(writes.get(Cell::Reg(Reg::A0)), Some(5));
    }

    #[test]
    fn boundary_set_membership() {
        let b = BoundarySet::new(BTreeSet::from([0x100, 0x200]));
        assert!(b.contains(0x100));
        assert!(!b.contains(0x104));
        assert_eq!(b.pcs().len(), 2);
    }
}
