//! # mssp-core
//!
//! The MSSP engine — the paper's primary contribution as an executable
//! library. It couples an untrusted, arbitrarily-wrong **master** (running
//! a distilled program) to verified **slave** tasks and an in-order
//! **verify/commit** unit, such that the committed architected state is
//! always exactly what the sequential machine would produce.
//!
//! * [`Engine`] — the machine: spawn / execute / verify / commit / squash
//!   / recover, generic over a [`CostModel`].
//! * [`Task`] / [`TaskStorage`] — speculative tasks with live-in recording
//!   and live-out buffering.
//! * [`Master`] — the fast path: distilled-program execution, checkpoint
//!   segments, PC translation.
//! * [`UnitCost`] — the functional cost model (timing-free runs).
//!
//! ## Quick start
//!
//! ```
//! use mssp_isa::asm::assemble;
//! use mssp_analysis::Profile;
//! use mssp_distill::{distill, DistillConfig};
//! use mssp_core::{Engine, EngineConfig, UnitCost};
//!
//! let program = assemble(
//!     "main: addi s0, zero, 100
//!      loop: add  s1, s1, s0
//!            addi s0, s0, -1
//!            bnez s0, loop
//!            halt",
//! ).unwrap();
//! let profile = Profile::collect(&program, Profile::UNBOUNDED).unwrap();
//! let distilled = distill(&program, &profile, &DistillConfig::default()).unwrap();
//!
//! let run = Engine::new(&program, &distilled, EngineConfig::default(), UnitCost)
//!     .run()
//!     .unwrap();
//! assert_eq!(run.state.reg(mssp_isa::Reg::S1), 5050);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adaptive;
pub mod chan;
mod cost;
mod engine;
mod master;
#[cfg(feature = "model-check")]
pub mod mutation;
mod predictor;
mod refinement;
pub mod ring;
mod sync;
mod task;
mod threaded;

pub use adaptive::{AdaptiveConfig, AdaptiveController, AdaptiveReport, Recompiler, SwapMarker};
pub use cost::{CoreRole, CostModel, UnitCost};
pub use engine::{
    verify_and_commit, Engine, EngineConfig, EngineError, EngineStats, MismatchSample, MsspRun,
    SquashReason, SquashSample, VerifyOutcome,
};
pub use master::{Master, MasterStall};
pub use predictor::{Predictor, PredictorReport};
pub use refinement::{check_refinement, RefinementError};
pub use task::{
    BoundarySet, RecoveryStorage, SegmentRules, Task, TaskEnd, TaskId, TaskStatus, TaskStorage,
};
pub use threaded::{run_threaded, run_threaded_adaptive, ThreadedError, ThreadedRun};
