//! Live-in value prediction for the squash-rate attack.
//!
//! The verify unit squashes a task when the master's checkpoint shipped a
//! stale live-in. Many of those staleness patterns are *predictable*: the
//! architected value at a given boundary repeats (last-value), advances
//! by a constant (stride), or follows the previous value (finite
//! context). The [`Predictor`] tracks, per `(boundary, register)` cell,
//! all three component predictors with saturating confidence counters and
//! offers a value only when one component is confident.
//!
//! Predictions are injected into a task's overlay at spawn, so every
//! predicted value is **read as a live-in and verified at commit** — a
//! wrong prediction costs a squash, exactly like a wrong master value.
//! Soundness therefore comes for free; the only rule the engine must
//! follow is the *train-on-verified-only* rule: the predictor observes
//! architected values at verify time (squash mismatches carry the
//! architected truth), never speculative ones, so a garbage master can
//! degrade prediction accuracy but never poison it with unverified data.

use std::collections::BTreeMap;

use mssp_isa::Reg;

/// Confidence a component must reach before its value is offered.
const CONF_THRESHOLD: u8 = 2;
/// Saturation ceiling for confidence counters (2-bit counters).
const CONF_MAX: u8 = 3;
/// Finite-context table entries kept per cell.
const CONTEXT_CAP: usize = 8;

/// One `(boundary, register)` cell: three component predictors plus
/// bookkeeping for accuracy reporting.
#[derive(Debug, Clone, Default)]
struct CellPredictor {
    last: u64,
    stride: i64,
    last_conf: u8,
    stride_conf: u8,
    /// Order-1 finite context: previous value → (next value, confidence).
    context: BTreeMap<u64, (u64, u8)>,
    observations: u64,
    last_correct: u64,
    stride_correct: u64,
    context_correct: u64,
}

impl CellPredictor {
    /// The value this cell would predict right now, if any component is
    /// confident. Preference order on confidence ties: context (most
    /// specific), then stride, then last-value.
    fn predict(&self) -> Option<u64> {
        let context = self
            .context
            .get(&self.last)
            .filter(|(_, c)| *c >= CONF_THRESHOLD)
            .map(|&(v, c)| (v, c));
        let mut best: Option<(u64, u8)> = None;
        if self.last_conf >= CONF_THRESHOLD {
            best = Some((self.last, self.last_conf));
        }
        if self.stride_conf >= CONF_THRESHOLD && best.is_none_or(|(_, c)| self.stride_conf >= c) {
            best = Some((self.last.wrapping_add_signed(self.stride), self.stride_conf));
        }
        if let Some((v, c)) = context {
            if best.is_none_or(|(_, bc)| c >= bc) {
                best = Some((v, c));
            }
        }
        best.map(|(v, _)| v)
    }

    /// Observes one verified architected value.
    fn train(&mut self, observed: u64) {
        if self.observations == 0 {
            self.last = observed;
            self.observations = 1;
            return;
        }
        // Last-value component.
        if observed == self.last {
            self.last_conf = (self.last_conf + 1).min(CONF_MAX);
            self.last_correct += 1;
        } else {
            self.last_conf = self.last_conf.saturating_sub(1);
        }
        // Stride component.
        if observed == self.last.wrapping_add_signed(self.stride) {
            self.stride_conf = (self.stride_conf + 1).min(CONF_MAX);
            self.stride_correct += 1;
        } else {
            self.stride_conf = self.stride_conf.saturating_sub(1);
            self.stride = observed.wrapping_sub(self.last) as i64;
        }
        // Finite-context component, keyed by the previous value.
        match self.context.get_mut(&self.last) {
            Some((v, c)) if *v == observed => {
                *c = (*c + 1).min(CONF_MAX);
                self.context_correct += 1;
            }
            Some(entry) => {
                if entry.1 == 0 {
                    *entry = (observed, 1);
                } else {
                    entry.1 -= 1;
                }
            }
            None => {
                if self.context.len() >= CONTEXT_CAP {
                    // Evict the lowest-confidence entry (ties: smallest key).
                    if let Some(&k) = self
                        .context
                        .iter()
                        .min_by_key(|(k, (_, c))| (*c, **k))
                        .map(|(k, _)| k)
                    {
                        self.context.remove(&k);
                    }
                }
                self.context.insert(self.last, (observed, 1));
            }
        }
        self.last = observed;
        self.observations += 1;
    }
}

/// Accuracy summary of one predictor, for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorReport {
    /// `(boundary, register)` cells being tracked.
    pub cells: usize,
    /// Total verified observations across all cells.
    pub observations: u64,
    /// Observations the last-value component would have predicted.
    pub last_value_correct: u64,
    /// Observations the stride component would have predicted.
    pub stride_correct: u64,
    /// Observations the finite-context component would have predicted.
    pub context_correct: u64,
}

impl PredictorReport {
    /// Best-component accuracy in `[0, 1]`: the fraction of observations
    /// the strongest single component got right.
    #[must_use]
    pub fn best_accuracy(&self) -> f64 {
        // The first observation of a cell only primes it.
        let trainable = self.observations.saturating_sub(self.cells as u64);
        if trainable == 0 {
            return 0.0;
        }
        let best = self
            .last_value_correct
            .max(self.stride_correct)
            .max(self.context_correct);
        best as f64 / trainable as f64
    }
}

/// Per-boundary live-in value predictor (see module docs).
#[derive(Debug, Clone, Default)]
pub struct Predictor {
    cells: BTreeMap<(u64, Reg), CellPredictor>,
}

impl Predictor {
    /// Creates an empty predictor.
    #[must_use]
    pub fn new() -> Predictor {
        Predictor::default()
    }

    /// Observes the verified architected value of `reg` at `boundary`.
    /// Callers must only feed values taken from architected state at
    /// verify time (the train-on-verified-only rule).
    pub fn train(&mut self, boundary: u64, reg: Reg, observed: u64) {
        if reg.is_zero() {
            return;
        }
        self.cells
            .entry((boundary, reg))
            .or_default()
            .train(observed);
    }

    /// Confident predictions for a task spawned at `boundary`, in
    /// deterministic (register-ordered) order.
    #[must_use]
    pub fn predict(&self, boundary: u64) -> Vec<(Reg, u64)> {
        self.cells
            .range((boundary, Reg::ZERO)..=(boundary, Reg::new(mssp_isa::NUM_REGS as u8 - 1)))
            .filter_map(|(&(_, reg), cell)| cell.predict().map(|v| (reg, v)))
            .collect()
    }

    /// Cells that resist prediction: observed at least `min_observations`
    /// times with every component below 50% accuracy. These are the
    /// candidates the distiller should target with pre-computation slices.
    #[must_use]
    pub fn hard_cells(&self, min_observations: u64) -> Vec<(u64, Reg)> {
        self.cells
            .iter()
            .filter(|(_, c)| {
                let trainable = c.observations.saturating_sub(1);
                trainable >= min_observations
                    && c.last_correct.max(c.stride_correct).max(c.context_correct) * 2 < trainable
            })
            .map(|(&k, _)| k)
            .collect()
    }

    /// Aggregate accuracy report across all cells.
    #[must_use]
    pub fn report(&self) -> PredictorReport {
        let mut r = PredictorReport {
            cells: self.cells.len(),
            ..PredictorReport::default()
        };
        for cell in self.cells.values() {
            r.observations += cell.observations;
            r.last_value_correct += cell.last_correct;
            r.stride_correct += cell.stride_correct;
            r.context_correct += cell.context_correct;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_stays_silent() {
        let mut p = Predictor::new();
        assert!(p.predict(0x10000).is_empty());
        p.train(0x10000, Reg::S0, 7);
        assert!(
            p.predict(0x10000).is_empty(),
            "one observation is priming only"
        );
    }

    #[test]
    fn last_value_pattern_becomes_confident() {
        let mut p = Predictor::new();
        for _ in 0..4 {
            p.train(0x10000, Reg::S0, 42);
        }
        assert_eq!(p.predict(0x10000), vec![(Reg::S0, 42)]);
        // Other boundaries are unaffected.
        assert!(p.predict(0x10004).is_empty());
    }

    #[test]
    fn stride_pattern_tracks_the_sequence() {
        let mut p = Predictor::new();
        for v in (100..160).step_by(12) {
            p.train(0x10000, Reg::A0, v);
        }
        assert_eq!(p.predict(0x10000), vec![(Reg::A0, 160)]);
    }

    #[test]
    fn context_pattern_learns_alternation() {
        let mut p = Predictor::new();
        for _ in 0..6 {
            p.train(0x10000, Reg::T0, 5);
            p.train(0x10000, Reg::T0, 9);
        }
        // last == 9, context says 9 → 5.
        assert_eq!(p.predict(0x10000), vec![(Reg::T0, 5)]);
    }

    #[test]
    fn noise_is_reported_hard_and_not_predicted() {
        let mut p = Predictor::new();
        // An LCG-ish sequence no component can track.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..32 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            p.train(0x10000, Reg::S1, x);
        }
        assert!(p.predict(0x10000).is_empty());
        assert_eq!(p.hard_cells(8), vec![(0x10000, Reg::S1)]);
        assert!(p.report().best_accuracy() < 0.5);
    }

    #[test]
    fn zero_register_is_never_tracked() {
        let mut p = Predictor::new();
        for _ in 0..8 {
            p.train(0x10000, Reg::ZERO, 0);
        }
        assert!(p.predict(0x10000).is_empty());
        assert_eq!(p.report().cells, 0);
    }
}
