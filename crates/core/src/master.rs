//! The master processor: executes the distilled program and generates
//! checkpoints.
//!
//! The master is deliberately untrusted — the engine treats it as a black
//! box emitting (start-PC, overlay) predictions. Its state is:
//!
//! * `dpc` — program counter in *distilled* space;
//! * `segment` — writes since the last spawn (becomes the next overlay
//!   segment);
//! * `live_segments` — one predicted-write set per in-flight task, pruned
//!   as tasks commit (committed values are visible in architected state).
//!
//! Reads resolve through the master's cumulative writes since restart,
//! then a **snapshot of architected state taken at restart** — the
//! master's private cache view. Reading *live* architected state instead
//! would let the verify pipeline (which can run ahead of a cache-cold
//! master) feed the master values from its own future, desynchronizing it
//! by a segment on every such race; the snapshot makes the master's view
//! time-consistent, and staleness is resolved the MSSP way (squash and
//! reseed).
//!
//! Indirect jumps land on *original*-space targets (the distiller
//! preserves the original register/memory image), which the master
//! translates back to distilled space via the distiller's PC map; an
//! untranslatable target marks the master *lost* until the engine restarts
//! it at the next recovery point.

use std::collections::VecDeque;
use std::sync::Arc;

use mssp_distill::{Distilled, SliceKind, MAX_SLICE_LEN};
use mssp_isa::Reg;
use mssp_machine::{eval_slice, step, Cell, Delta, MachineState, StepInfo, Storage};

/// Why the master is not currently producing predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterStall {
    /// Executing normally.
    Active,
    /// Executed the distilled program's `halt`.
    Halted,
    /// Jumped somewhere untranslatable or faulted; waiting for restart.
    Lost,
}

/// The master processor state.
#[derive(Debug, Clone)]
pub struct Master {
    dpc: u64,
    /// Architected state as of this master's restart (its cache view).
    base: MachineState,
    /// All writes since restart (the master's own read view).
    cum: Delta,
    /// Writes since the last spawn (becomes the next overlay segment).
    segment: Delta,
    live_segments: VecDeque<(u64, Arc<Delta>)>,
    status: MasterStall,
    instructions: u64,
    /// Boundary crossings since the last spawn trigger.
    crossings: u64,
    /// Boundary crossings since restart — bounds how far back a spawn
    /// guard may probe (the restart snapshot is architecturally true, so
    /// no divergence can predate it).
    crossings_since_restart: u64,
    /// Crossings that make one task (from the distiller).
    crossings_per_task: u64,
    /// Pending spawn: original-space start PC for the next task.
    pending_spawn: Option<u64>,
    /// Spawns suppressed by a spawn-guard slice since the last
    /// [`Master::take_vetoed_spawns`] (each one also marks the master
    /// lost, handing the window to sequential recovery).
    vetoed_spawns: u64,
}

impl Master {
    /// Creates a master restarted at original-space PC `orig_pc`, seeded
    /// with `base` (a snapshot of architected state at a consistent
    /// point) and spawning its first task there.
    ///
    /// If `orig_pc` has no distilled image the master starts lost (the
    /// engine will fall back to sequential recovery segments).
    #[must_use]
    pub fn restart_at(
        distilled: &Distilled,
        orig_pc: u64,
        spawn_first: bool,
        base: MachineState,
    ) -> Master {
        let (dpc, status) = match distilled.to_dist(orig_pc) {
            Some(d) => (d, MasterStall::Active),
            None => (0, MasterStall::Lost),
        };
        Master {
            dpc,
            base,
            cum: Delta::new(),
            segment: Delta::new(),
            live_segments: VecDeque::new(),
            status,
            instructions: 0,
            crossings: 0,
            crossings_since_restart: 0,
            crossings_per_task: distilled.crossings_per_task(),
            pending_spawn: if spawn_first && status == MasterStall::Active {
                Some(orig_pc)
            } else {
                None
            },
            vetoed_spawns: 0,
        }
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> MasterStall {
        self.status
    }

    /// Whether the master wants to spawn a task and is waiting for a free
    /// slave. While pending, the master does not execute.
    #[must_use]
    pub fn pending_spawn(&self) -> Option<u64> {
        self.pending_spawn
    }

    /// Total distilled instructions executed since restart.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of in-flight predicted segments (diagnostic).
    #[must_use]
    pub fn live_segment_count(&self) -> usize {
        self.live_segments.len()
    }

    /// Spawn-guard vetoes since the last call (reset on read).
    pub fn take_vetoed_spawns(&mut self) -> u64 {
        std::mem::take(&mut self.vetoed_spawns)
    }

    /// Completes a pending spawn: closes the current segment under
    /// `prev_task` (the last task spawned before this one, if any) and
    /// returns `(start_pc, overlay)` for the new task.
    ///
    /// # Panics
    ///
    /// Panics if no spawn is pending.
    pub fn take_spawn(&mut self, prev_task: Option<u64>) -> (u64, Vec<Arc<Delta>>) {
        let start = self.pending_spawn.take().expect("spawn must be pending");
        if let Some(prev) = prev_task {
            let seg = Arc::new(std::mem::take(&mut self.segment));
            self.live_segments.push_back((prev, seg));
        }
        // Overlay: newest segment first.
        let overlay: Vec<Arc<Delta>> = self
            .live_segments
            .iter()
            .rev()
            .map(|(_, d)| Arc::clone(d))
            .collect();
        (start, overlay)
    }

    /// Marks the master lost (used by the engine's run-ahead bound). A
    /// lost master produces nothing until restarted at a recovery point.
    pub fn mark_lost(&mut self) {
        self.status = MasterStall::Lost;
        self.pending_spawn = None;
    }

    /// Prunes predicted segments for tasks up to and including `task_id`.
    /// This trims only the overlays handed to *future* tasks (committed
    /// results are visible to them in architected state); the master's own
    /// read view (`cum` over the restart snapshot) is unaffected.
    pub fn on_commit(&mut self, task_id: u64) {
        while matches!(self.live_segments.front(), Some((id, _)) if *id <= task_id) {
            self.live_segments.pop_front();
        }
    }

    /// Executes one distilled instruction. Returns the step info, or
    /// `None` if the master is stalled (halted/lost/pending spawn).
    /// Landing on a task boundary arms a pending spawn, which also stalls
    /// the master until the engine dispatches it.
    pub fn step(&mut self, distilled: &Distilled) -> Option<StepInfo> {
        if self.status != MasterStall::Active || self.pending_spawn.is_some() {
            return None;
        }
        let mut storage = MasterStorage {
            cum: &mut self.cum,
            segment: &mut self.segment,
            base: &self.base,
        };
        let info = match step(&mut storage, distilled.program(), self.dpc) {
            Ok(info) => info,
            Err(_) => {
                self.status = MasterStall::Lost;
                return None;
            }
        };
        self.instructions += 1;
        if info.halted {
            self.status = MasterStall::Halted;
            return Some(info);
        }
        let mut next = info.next_pc;
        if info.instr.is_indirect_jump() {
            // Indirect targets are original-space addresses (preserved
            // image); translate back into distilled space.
            match distilled.to_dist(next) {
                Some(d) => next = d,
                None => {
                    self.status = MasterStall::Lost;
                    return Some(info);
                }
            }
        }
        self.dpc = next;
        if let Some(orig_pc) = distilled.boundary_at_dist(next) {
            self.crossings += 1;
            self.crossings_since_restart += 1;
            if self.crossings >= self.crossings_per_task {
                self.crossings = 0;
                if self.spawn_allowed(distilled, orig_pc) {
                    self.pending_spawn = Some(orig_pc);
                } else {
                    // A guard says the asserted path breaks inside this
                    // window: spawning would feed verify a doomed task.
                    // Go lost instead — the engine's recovery machinery
                    // runs the window sequentially and restarts us.
                    self.vetoed_spawns += 1;
                    self.status = MasterStall::Lost;
                }
            }
        }
        Some(info)
    }

    /// The master's current value of `r` (cumulative writes over the
    /// restart snapshot) — the view a spawned task's checkpoint ships.
    fn view(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.cum
                .get(Cell::Reg(r))
                .unwrap_or_else(|| self.base.read_cell(Cell::Reg(r)))
        }
    }

    /// Runs the pre-computation slices attached to boundary `orig_pc`.
    ///
    /// Spawn guards probe the asserted branch over every crossing of the
    /// upcoming window (seeding each input with its per-crossing stride);
    /// any resolution against the asserted direction vetoes the spawn.
    /// Live-in slices recompute their target from spawn-available values
    /// and write the result into the *segment only* — correcting the
    /// checkpoint handed to the new task without perturbing the master's
    /// own read view. An inconclusive slice (fault, budget) is ignored:
    /// slices steer performance, never correctness.
    fn spawn_allowed(&mut self, distilled: &Distilled, orig_pc: u64) -> bool {
        let slices = distilled.slices_at(orig_pc);
        if slices.is_empty() {
            return true;
        }
        let budget = MAX_SLICE_LEN as u64 + 1;
        let mut inputs: Vec<(Reg, u64)> = Vec::new();
        // Guards first: a vetoed spawn must not ship live-in corrections.
        for slice in slices {
            let SliceKind::SpawnGuard { asserted_taken } = slice.kind else {
                continue;
            };
            // Inputs the slice itself redefines (loop induction updates,
            // pointer-chase loads) are fed back across probes: probe `j+1`
            // starts from probe `j`'s result. The rest advance by their
            // statically recovered per-crossing stride.
            let defs: std::collections::BTreeSet<Reg> = slice
                .program
                .iter_pcs()
                .filter_map(|(_, i)| i.def_reg())
                .collect();
            let mut fed: Vec<(Reg, u64)> = slice
                .inputs
                .iter()
                .filter(|&&(r, _)| defs.contains(&r))
                .map(|&(r, _)| (r, self.view(r)))
                .collect();
            // Retrospective probes: the rare path may have fallen *behind*
            // the master already — an asserted branch deviating at crossing
            // -k leaves the master silently diverged, and every task it
            // spawns from here is doomed. Probing the recent past (bounded
            // by the restart point, which is architecturally true) turns
            // that into a veto, and the recovery restart heals the
            // divergence. Only stride-recoverable inputs can rewind;
            // slices with fed-back inputs probe forward only.
            let lookback = if fed.is_empty() {
                slice.window.min(self.crossings_since_restart) as i64
            } else {
                0
            };
            'probe: for j in -lookback..=slice.window as i64 {
                inputs.clear();
                for &(r, stride) in &slice.inputs {
                    let v = match fed.iter().find(|&&(fr, _)| fr == r) {
                        Some(&(_, v)) => v,
                        None => self.view(r).wrapping_add_signed(stride.wrapping_mul(j)),
                    };
                    inputs.push((r, v));
                }
                let eval = eval_slice(&slice.program, &inputs, budget, |widx| {
                    self.cum
                        .get(Cell::Mem(widx))
                        .unwrap_or_else(|| self.base.read_cell(Cell::Mem(widx)))
                });
                let Some(eval) = eval else { break };
                match eval.taken {
                    Some(taken) if taken != asserted_taken => return false,
                    Some(_) => {}
                    None => break 'probe,
                }
                for (r, v) in &mut fed {
                    *v = eval.reg(*r);
                }
            }
        }
        for slice in slices {
            let SliceKind::LiveIn { target } = slice.kind else {
                continue;
            };
            inputs.clear();
            inputs.extend(slice.inputs.iter().map(|&(r, _)| (r, self.view(r))));
            let eval = eval_slice(&slice.program, &inputs, budget, |widx| {
                self.cum
                    .get(Cell::Mem(widx))
                    .unwrap_or_else(|| self.base.read_cell(Cell::Mem(widx)))
            });
            if let Some(eval) = eval {
                self.segment.set(Cell::Reg(target), eval.reg(target));
            }
        }
        true
    }
}

/// The master's storage: cumulative writes since restart over the restart
/// snapshot. Writes also land in the current segment (the next task's
/// overlay).
struct MasterStorage<'a> {
    cum: &'a mut Delta,
    segment: &'a mut Delta,
    base: &'a MachineState,
}

impl MasterStorage<'_> {
    fn read_cell(&self, cell: Cell) -> u64 {
        self.cum
            .get(cell)
            .unwrap_or_else(|| self.base.read_cell(cell))
    }

    fn write_cell(&mut self, cell: Cell, value: u64) {
        self.cum.set(cell, value);
        self.segment.set(cell, value);
    }
}

impl Storage for MasterStorage<'_> {
    fn read_reg(&mut self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.read_cell(Cell::Reg(r))
        }
    }

    fn write_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.write_cell(Cell::Reg(r), value);
        }
    }

    fn load_word(&mut self, widx: u64) -> u64 {
        self.read_cell(Cell::Mem(widx))
    }

    fn store_word(&mut self, widx: u64, value: u64) {
        self.write_cell(Cell::Mem(widx), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssp_analysis::Profile;
    use mssp_distill::{distill, DistillConfig, DistillLevel};
    use mssp_isa::asm::assemble;

    fn setup(src: &str, target: u64) -> (mssp_isa::Program, Distilled) {
        let p = assemble(src).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let cfg = DistillConfig {
            target_task_size: target,
            ..DistillConfig::at_level(DistillLevel::None)
        };
        (p.clone(), distill(&p, &prof, &cfg).unwrap())
    }

    const LOOP: &str = "
        main: addi s0, zero, 40
        loop: addi s1, s1, 1
              addi s0, s0, -1
              bnez s0, loop
              halt";

    #[test]
    fn master_spawns_at_entry_then_at_boundaries() {
        let (p, d) = setup(LOOP, 10);
        let arch = MachineState::boot(&p);
        let mut m = Master::restart_at(&d, p.entry(), true, arch.clone());
        assert_eq!(m.pending_spawn(), Some(p.entry()));
        let (start, overlay) = m.take_spawn(None);
        assert_eq!(start, p.entry());
        assert!(overlay.is_empty());

        // Run until the next spawn trigger.
        let mut steps = 0;
        while m.pending_spawn().is_none() && m.status() == MasterStall::Active {
            m.step(&d).unwrap();
            steps += 1;
            assert!(steps < 1000);
        }
        let next = m.pending_spawn().unwrap();
        assert!(d.boundaries().contains(&next));
    }

    #[test]
    fn overlay_accumulates_segments_in_flight() {
        let (p, d) = setup(LOOP, 10);
        let arch = MachineState::boot(&p);
        let mut m = Master::restart_at(&d, p.entry(), true, arch.clone());
        let (_, ov0) = m.take_spawn(None);
        assert!(ov0.is_empty());

        let mut last_task = 0u64;
        let mut overlays = Vec::new();
        for task_id in 1..=3u64 {
            while m.pending_spawn().is_none() {
                assert!(m.step(&d).is_some());
            }
            let (_, ov) = m.take_spawn(Some(last_task));
            last_task = task_id;
            overlays.push(ov);
        }
        assert_eq!(overlays[0].len(), 1);
        assert_eq!(overlays[1].len(), 2);
        assert_eq!(overlays[2].len(), 3);
        // Newest-first: the first overlay entry of the last spawn holds
        // the most recent s0 value.
        let newest = &overlays[2][0];
        let oldest = &overlays[2][2];
        let newest_s0 = newest.get(Cell::Reg(Reg::S0)).unwrap();
        let oldest_s0 = oldest.get(Cell::Reg(Reg::S0)).unwrap();
        assert!(newest_s0 < oldest_s0, "{newest_s0} vs {oldest_s0}");
    }

    #[test]
    fn commit_prunes_old_segments() {
        let (p, d) = setup(LOOP, 10);
        let arch = MachineState::boot(&p);
        let mut m = Master::restart_at(&d, p.entry(), true, arch.clone());
        let _ = m.take_spawn(None);
        let mut last = 0u64;
        for id in 1..=3u64 {
            while m.pending_spawn().is_none() {
                m.step(&d);
            }
            let _ = m.take_spawn(Some(last));
            last = id;
        }
        assert_eq!(m.live_segment_count(), 3);
        m.on_commit(0);
        assert_eq!(m.live_segment_count(), 2);
        m.on_commit(2);
        assert_eq!(m.live_segment_count(), 0);
    }

    #[test]
    fn master_halts_with_program() {
        let (p, d) = setup(LOOP, 10);
        let arch = MachineState::boot(&p);
        let mut m = Master::restart_at(&d, p.entry(), false, arch.clone());
        for _ in 0..10_000 {
            if m.pending_spawn().is_some() {
                let _ = m.take_spawn(None);
            }
            if m.step(&d).is_none() {
                break;
            }
        }
        assert_eq!(m.status(), MasterStall::Halted);
    }

    #[test]
    fn unmapped_restart_is_lost() {
        let (_, d) = setup(LOOP, 10);
        let m = Master::restart_at(&d, 0xDEAD_BEE0, true, MachineState::new());
        assert_eq!(m.status(), MasterStall::Lost);
        assert_eq!(m.pending_spawn(), None);
    }
}
