//! Lock-free bounded rings for the threaded executor's hot path.
//!
//! Two queue flavours, both std-only atomics over a fixed power-of-two
//! slot array, both blocking via a [`Doorbell`] (park/unpark) rather
//! than a mutex/condvar pair:
//!
//! * [`spsc`] — a single-producer single-consumer ring. The coordinator
//!   owns one per worker for task dispatch, and one back-channel to the
//!   master for commit notifications. Producer and consumer each own
//!   one index and *cache* the other's, so a steady-state push or pop
//!   is one plain slot write plus one release store — no shared
//!   read-modify-write at all.
//! * [`mpsc`] — a bounded Vyukov-style multi-producer single-consumer
//!   queue carrying every worker's results and the master's spawns into
//!   the coordinator. Producers claim slots with a CAS on `head`;
//!   per-slot sequence numbers tell the consumer when a claimed slot's
//!   payload is actually visible. Per-producer FIFO order is preserved,
//!   which the coordinator relies on (a master's `Spawn` messages must
//!   stay ordered before its `MasterStalled`).
//!
//! Memory ordering is acquire/release only on the ring proper; the sole
//! `SeqCst` operations are the two fences in the doorbell's sleep/wake
//! handshake. DESIGN.md §6c gives the full argument, §6d the per-site
//! table; every `Ordering::` use below carries a `// why:` note that
//! `tools/ordering_audit.rs` enforces.
//!
//! Disconnect semantics match `std::sync::mpsc`: dropping all senders
//! makes the receiver drain remaining items and then report
//! [`TryRecvError::Disconnected`]; dropping the receiver makes sends
//! fail and hands the items back.
//!
//! All atomics, cells, and thread primitives come from [`crate::sync`],
//! so with the `model-check` feature the whole module runs under the
//! `mssp-check` deterministic scheduler (see `crates/check`).

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::{Arc, OnceLock};

use crate::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;
use crate::sync::thread::{self, Thread};

/// Error for non-blocking receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The ring is currently empty; more items may still arrive.
    Empty,
    /// The ring is empty and every sender has been dropped.
    Disconnected,
}

/// Error for non-blocking sends; hands the unsent value back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is full; the item is handed back.
    Full(T),
    /// The receiver was dropped; the item is handed back.
    Disconnected(T),
}

/// The receiver was dropped; blocking sends hand the value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Sleep/wake handshake between one sleeping consumer and any number of
/// producers, built on `thread::park`.
///
/// The lost-wakeup race (consumer checks empty → producer pushes and
/// sees `sleeping == false` → consumer sleeps forever) is broken by a
/// pair of `SeqCst` fences: the consumer stores `sleeping = true`,
/// fences, then re-checks the ring before parking; a producer pushes,
/// fences, then loads `sleeping`. The fences are totally ordered, so
/// either the consumer's re-check observes the push, or the producer's
/// load observes `sleeping == true` and unparks. An unpark that races
/// ahead of the park is absorbed by `park`'s token.
///
/// `crates/check/tests/model_check.rs` proves both directions: the
/// handshake as written admits no lost wakeup in the explored space,
/// and weakening the fences (the `DOORBELL_FENCE_ACQREL` mutation)
/// produces a replayable deadlock counterexample.
#[derive(Debug, Default)]
struct Doorbell {
    sleeping: AtomicBool,
    sleeper: OnceLock<Thread>,
}

/// The doorbell's Dekker fence, shared by both sides of the handshake.
fn handshake_fence() {
    #[cfg(feature = "model-check")]
    if crate::mutation::armed(&crate::mutation::DOORBELL_FENCE_ACQREL) {
        // Deliberately-broken mutant for the checker's teeth tests.
        fence(Ordering::AcqRel); // why: seeded mutation; see crate::mutation
        return;
    }
    // why: SeqCst totally orders the consumer's sleeping-store → ring
    // re-check against the producer's publish → sleeping-load (a Dekker /
    // StoreLoad pattern); AcqRel fences would let both sides read stale
    // values and lose the wakeup.
    fence(Ordering::SeqCst);
}

impl Doorbell {
    /// Consumer side: announce intent to sleep. Caller must re-check
    /// its wake condition *after* this returns, and only then
    /// [`Doorbell::sleep`].
    fn prepare_sleep(&self) {
        self.sleeper.get_or_init(thread::current);
        // why: Relaxed suffices; ordering against the producer's load is
        // provided by the SeqCst handshake fence on the next line.
        self.sleeping.store(true, Ordering::Relaxed);
        handshake_fence();
    }

    /// Consumer side: park until rung (or spuriously; callers loop).
    fn sleep(&self) {
        thread::park();
        // why: Relaxed; clearing our own flag after waking publishes no
        // payload — the next prepare_sleep re-fences before it matters.
        self.sleeping.store(false, Ordering::Relaxed);
    }

    /// Consumer side: withdraw a `prepare_sleep` without parking.
    fn cancel_sleep(&self) {
        // why: Relaxed; a spurious extra unpark from a racing producer is
        // absorbed by the park token, so no ordering is required here.
        self.sleeping.store(false, Ordering::Relaxed);
    }

    /// Producer side: wake the consumer if it is (about to be) asleep.
    /// Callers must have already published their payload.
    fn ring(&self) {
        handshake_fence();
        // why: Relaxed; the handshake fence above already orders this load
        // after our payload publish, which is all the protocol needs.
        if self.sleeping.load(Ordering::Relaxed) {
            // why: Relaxed; clearing the flag only suppresses redundant
            // unparks from other producers, it is not a sync edge.
            self.sleeping.store(false, Ordering::Relaxed);
            if let Some(t) = self.sleeper.get() {
                t.unpark();
            }
        }
    }
}

/// Pads a hot word out to its own cache line so the producer-owned and
/// consumer-owned indices (and the doorbell) never false-share. Derefs
/// to the inner value, so call sites read like the bare atomic.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Aligned<T>(T);

impl<T> std::ops::Deref for Aligned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for Aligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

fn slot_array<T>(cap: usize) -> Box<[UnsafeCell<MaybeUninit<T>>]> {
    (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect()
}

fn round_capacity(cap: usize) -> usize {
    cap.max(2).next_power_of_two()
}

// ---------------------------------------------------------------------------
// SPSC
// ---------------------------------------------------------------------------

struct SpscShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer will write. Producer-owned; consumer reads.
    head: Aligned<AtomicUsize>,
    /// Next slot the consumer will read. Consumer-owned; producer reads.
    tail: Aligned<AtomicUsize>,
    /// Set when either side is dropped.
    closed: AtomicBool,
    bell: Aligned<Doorbell>,
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other thread; slots are never aliased because the producer only writes
// slots in `[head, tail + cap)` and the consumer only reads `[tail, head)`,
// with ownership transferred by the release/acquire pair on `head`/`tail`.
unsafe impl<T: Send> Send for SpscShared<T> {}
unsafe impl<T: Send> Sync for SpscShared<T> {}

impl<T> Drop for SpscShared<T> {
    fn drop(&mut self) {
        // Exclusive access: drop every in-flight item.
        let mask = self.mask;
        let head = *self.head.get_mut();
        let mut tail = *self.tail.get_mut();
        while tail != head {
            unsafe { self.buf[tail & mask].get_mut().assume_init_drop() };
            tail = tail.wrapping_add(1);
        }
    }
}

/// Producer half of an [`spsc`] ring.
pub struct SpscSender<T> {
    shared: Arc<SpscShared<T>>,
    head: usize,
    cached_tail: usize,
}

/// Consumer half of an [`spsc`] ring.
pub struct SpscReceiver<T> {
    shared: Arc<SpscShared<T>>,
    tail: usize,
    cached_head: usize,
}

/// A bounded single-producer single-consumer ring holding at least
/// `cap` items (rounded up to a power of two).
pub fn spsc<T: Send>(cap: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let cap = round_capacity(cap);
    let shared = Arc::new(SpscShared {
        buf: slot_array(cap),
        mask: cap - 1,
        head: Aligned(AtomicUsize::new(0)),
        tail: Aligned(AtomicUsize::new(0)),
        closed: AtomicBool::new(false),
        bell: Aligned(Doorbell::default()),
    });
    (
        SpscSender {
            shared: Arc::clone(&shared),
            head: 0,
            cached_tail: 0,
        },
        SpscReceiver {
            shared,
            tail: 0,
            cached_head: 0,
        },
    )
}

/// Ordering for the consumer's load of the producer's published `head`.
fn publish_load_ordering() -> Ordering {
    #[cfg(feature = "model-check")]
    if crate::mutation::armed(&crate::mutation::RELAXED_PUBLISH_LOAD) {
        // Deliberately-broken mutant for the checker's teeth tests.
        return Ordering::Relaxed; // why: seeded mutation; see crate::mutation
    }
    // why: Acquire pairs with the producer's Release store of `head`,
    // making every slot payload written before that publish visible to
    // the consumer's subsequent slot reads.
    Ordering::Acquire
}

impl<T: Send> SpscSender<T> {
    fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// True once the consumer has been dropped.
    fn disconnected(&self) -> bool {
        // why: Acquire pairs with the consumer's Release `closed` store on
        // drop, so we also observe its final published `tail`.
        self.shared.closed.load(Ordering::Acquire) && Arc::strong_count(&self.shared) == 1
    }

    /// One free slot check against the cached tail, refreshing on miss.
    fn has_space(&mut self) -> bool {
        if self.head.wrapping_sub(self.cached_tail) < self.capacity() {
            return true;
        }
        // why: Acquire pairs with the consumer's Release `tail` store,
        // ordering its last payload read before our reuse of the slot.
        self.cached_tail = self.shared.tail.load(Ordering::Acquire);
        self.head.wrapping_sub(self.cached_tail) < self.capacity()
    }

    /// Write one slot and advance the local head (no release store yet).
    fn write_slot(&mut self, value: T) {
        self.shared.buf[self.head & self.shared.mask].with_mut(|p| unsafe { (*p).write(value) });
        self.head = self.head.wrapping_add(1);
    }

    /// Publish every slot written so far and wake the consumer.
    fn publish(&self) {
        // why: Release publishes the slot writes above to the consumer's
        // Acquire load of `head` (the payload's only synchronization edge).
        self.shared.head.store(self.head, Ordering::Release);
        self.shared.bell.ring();
    }

    /// Non-blocking send.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        if self.disconnected() {
            return Err(TrySendError::Disconnected(value));
        }
        if !self.has_space() {
            return Err(TrySendError::Full(value));
        }
        self.write_slot(value);
        self.publish();
        Ok(())
    }

    /// Blocking send: spins (with yields) while the ring is full.
    ///
    /// Producers never park — on the task path the ring is sized well
    /// above the speculation window, so "full" is a transient.
    pub fn send(&mut self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    thread::yield_now();
                }
            }
        }
    }

    /// Non-blocking batched send: moves items from the front of `queue`
    /// into the ring until the ring is full or the queue is empty, with
    /// a single publish (one release store, one bell ring) for the
    /// whole transfer.
    ///
    /// # Partial-progress contract
    ///
    /// Returns `Ok(n)` with exactly the first `n` items transferred and
    /// every unsent item still in `queue`, front order preserved. A
    /// full ring is not an error — `Ok(0)` just means "retry after the
    /// consumer drains". Returns [`TrySendError::Disconnected`] only
    /// when the receiver was already gone on entry, with the queue left
    /// fully intact for the caller to reclaim; this call never drops
    /// items. (Items accepted by an earlier `Ok(n)` live in the ring
    /// and are dropped with it if the consumer never picks them up.)
    ///
    /// # Errors
    ///
    /// [`TrySendError::Disconnected`] when the receiver has been
    /// dropped; the queue is untouched.
    pub fn try_send_batch(&mut self, queue: &mut VecDeque<T>) -> Result<usize, TrySendError<()>> {
        if self.disconnected() {
            return Err(TrySendError::Disconnected(()));
        }
        let mut sent = 0;
        while !queue.is_empty() && self.has_space() {
            let item = queue.pop_front().expect("checked non-empty");
            self.write_slot(item);
            sent += 1;
        }
        if sent > 0 {
            self.publish();
        }
        Ok(sent)
    }

    /// Blocking batched send with a single publish per ring-capacity
    /// chunk: flushes what fits, spins (with yields) while the ring is
    /// full, and resumes until the whole batch is in the ring.
    ///
    /// # Partial-progress contract
    ///
    /// A full ring never drops items — written slots are published so
    /// the consumer can drain, then the send resumes. On disconnect the
    /// error hands back every item not yet transferred to the ring
    /// (the one in hand plus everything left in the iterator), in
    /// order; items already transferred are dropped with the ring.
    ///
    /// # Errors
    ///
    /// [`SendError`] carrying the unsent remainder when the receiver
    /// has been dropped.
    pub fn send_batch<I: IntoIterator<Item = T>>(
        &mut self,
        items: I,
    ) -> Result<(), SendError<VecDeque<T>>> {
        let mut items = items.into_iter();
        let mut wrote = false;
        for item in items.by_ref() {
            let mut item = Some(item);
            loop {
                if self.disconnected() {
                    let mut rest: VecDeque<T> = VecDeque::new();
                    rest.extend(item.take());
                    rest.extend(items);
                    return Err(SendError(rest));
                }
                if self.has_space() {
                    break;
                }
                if wrote {
                    // Let the consumer see what we have before spinning.
                    self.publish();
                    wrote = false;
                }
                thread::yield_now();
            }
            self.write_slot(item.take().expect("item pending"));
            wrote = true;
        }
        if wrote {
            self.publish();
        }
        Ok(())
    }
}

impl<T> Drop for SpscSender<T> {
    fn drop(&mut self) {
        // why: Release orders our final slot publish before the `closed`
        // flag, pairing with the consumer's Acquire in its drain-on-
        // disconnect re-check so the last items are not lost.
        self.shared.closed.store(true, Ordering::Release);
        self.shared.bell.ring();
    }
}

impl<T: Send> SpscReceiver<T> {
    /// Refresh the cached head; true if items are visible.
    fn refresh(&mut self) -> bool {
        if self.cached_head != self.tail {
            return true;
        }
        self.cached_head = self.shared.head.load(publish_load_ordering());
        self.cached_head != self.tail
    }

    fn read_slot(&mut self) -> T {
        let v = self.shared.buf[self.tail & self.shared.mask]
            .with(|p| unsafe { (*p).assume_init_read() });
        self.tail = self.tail.wrapping_add(1);
        v
    }

    /// Read one visible slot and hand it back to the producer.
    fn take_slot(&mut self) -> T {
        #[cfg(feature = "model-check")]
        if crate::mutation::armed(&crate::mutation::EARLY_TAIL_PUBLISH) {
            // Deliberately-broken mutant: frees the slot before reading
            // it, so the producer may overwrite a live payload.
            self.shared
                .tail
                // why: seeded mutation; see crate::mutation
                .store(self.tail.wrapping_add(1), Ordering::Release);
            return self.read_slot();
        }
        let v = self.read_slot();
        // why: Release orders the payload read above before the producer's
        // Acquire `tail` load in `has_space`, so the slot is only reused
        // after its previous value has been fully taken.
        self.shared.tail.store(self.tail, Ordering::Release);
        v
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        if self.refresh() {
            return Ok(self.take_slot());
        }
        // why: Acquire pairs with the producer's Release `closed` store on
        // drop, ordering us after its final publish for the re-check below.
        if self.shared.closed.load(Ordering::Acquire) {
            // The close store is ordered after the producer's final
            // publish; re-check so a push racing the drop is not lost.
            if self.refresh() {
                return Ok(self.take_slot());
            }
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocking receive; parks via the doorbell while empty.
    pub fn recv(&mut self) -> Result<T, TryRecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(TryRecvError::Disconnected),
                Err(TryRecvError::Empty) => {
                    self.shared.bell.prepare_sleep();
                    // Re-check after announcing sleep (see Doorbell).
                    // why: Acquire on `closed` pairs with the producer-drop
                    // Release so a disconnect racing the park is seen here.
                    if self.refresh() || self.shared.closed.load(Ordering::Acquire) {
                        self.shared.bell.cancel_sleep();
                        continue;
                    }
                    self.shared.bell.sleep();
                }
            }
        }
    }

    /// Drain up to `max` immediately-visible items into `out` with a
    /// single tail publish.
    ///
    /// # Partial-progress contract
    ///
    /// Returns how many items were moved; `0` is not an error (the ring
    /// may simply be empty — distinguish disconnect via
    /// [`SpscReceiver::try_recv`]). Every moved item is appended to
    /// `out` before the tail publish hands the freed slots back, so a
    /// producer can never overwrite an undelivered item.
    pub fn recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max && self.refresh() {
            out.push(self.read_slot());
            n += 1;
        }
        if n > 0 {
            // why: Release, same edge as `take_slot`: payload reads above
            // happen-before the producer's Acquire reuse of the slots.
            self.shared.tail.store(self.tail, Ordering::Release);
        }
        n
    }
}

impl<T> Drop for SpscReceiver<T> {
    fn drop(&mut self) {
        // Publish the final tail so `SpscShared::drop` (run by whichever
        // side is dropped last) frees exactly the in-flight items.
        // why: Release orders our last payload reads before the handoff.
        self.shared.tail.store(self.tail, Ordering::Release);
        // why: Release pairs with the producer's Acquire in
        // `disconnected()`, which must see the final `tail` with the flag.
        self.shared.closed.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// MPSC (bounded Vyukov queue)
// ---------------------------------------------------------------------------

struct MpscSlot<T> {
    /// Slot generation stamp: `pos` when free for the producer claiming
    /// ticket `pos`, `pos + 1` once its payload is readable, and
    /// `pos + capacity` after the consumer frees it for the next lap.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct MpscShared<T> {
    buf: Box<[MpscSlot<T>]>,
    mask: usize,
    /// Producer ticket counter (CAS-claimed).
    head: Aligned<AtomicUsize>,
    /// Consumer position. Only the consumer stores it; kept shared so
    /// the final `Drop` can locate in-flight items.
    tail: Aligned<AtomicUsize>,
    /// Live sender count; 0 means disconnected for the receiver.
    senders: AtomicUsize,
    /// Set when the receiver is dropped.
    closed: AtomicBool,
    bell: Aligned<Doorbell>,
}

// SAFETY: a producer gets exclusive access to a slot's payload cell by
// winning the CAS on `head` while `seq == pos`, and publishes it with the
// release store `seq = pos + 1`; the single consumer acquires that store
// before reading and releases the slot with `seq = pos + cap`. No two
// parties ever hold the same slot in the same lap.
unsafe impl<T: Send> Send for MpscShared<T> {}
unsafe impl<T: Send> Sync for MpscShared<T> {}

impl<T> Drop for MpscShared<T> {
    fn drop(&mut self) {
        let mask = self.mask;
        let mut pos = *self.tail.get_mut();
        loop {
            let slot = &mut self.buf[pos & mask];
            if *slot.seq.get_mut() == pos.wrapping_add(1) {
                unsafe { slot.val.get_mut().assume_init_drop() };
                pos = pos.wrapping_add(1);
            } else {
                break;
            }
        }
    }
}

/// Cloneable producer half of an [`mpsc`] ring.
pub struct MpscSender<T> {
    shared: Arc<MpscShared<T>>,
}

/// Consumer half of an [`mpsc`] ring.
pub struct MpscReceiver<T> {
    shared: Arc<MpscShared<T>>,
    tail: usize,
}

/// A bounded multi-producer single-consumer ring holding at least `cap`
/// items (rounded up to a power of two). Per-producer FIFO order is
/// preserved.
pub fn mpsc<T: Send>(cap: usize) -> (MpscSender<T>, MpscReceiver<T>) {
    let cap = round_capacity(cap);
    let buf: Box<[MpscSlot<T>]> = (0..cap)
        .map(|i| MpscSlot {
            seq: AtomicUsize::new(i),
            val: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let shared = Arc::new(MpscShared {
        buf,
        mask: cap - 1,
        head: Aligned(AtomicUsize::new(0)),
        tail: Aligned(AtomicUsize::new(0)),
        senders: AtomicUsize::new(1),
        closed: AtomicBool::new(false),
        bell: Aligned(Doorbell::default()),
    });
    (
        MpscSender {
            shared: Arc::clone(&shared),
        },
        MpscReceiver { shared, tail: 0 },
    )
}

impl<T: Send> MpscSender<T> {
    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        // why: Acquire pairs with the receiver-drop Release of `closed`,
        // ordering us after its final `tail` so slot state is consistent.
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(value));
        }
        let shared = &*self.shared;
        let cap = shared.mask + 1;
        // why: Relaxed; `head` is only a ticket hint here — the slot's
        // `seq` (Acquire, below) is what transfers slot ownership.
        let mut pos = shared.head.load(Ordering::Relaxed);
        loop {
            let slot = &shared.buf[pos & shared.mask];
            // why: Acquire pairs with the consumer's Release `seq` store
            // freeing the slot, ordering its payload read of the previous
            // lap before our overwrite.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                // Slot free this lap: claim the ticket.
                match shared.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    // why: Relaxed; winning the ticket publishes nothing —
                    // the payload is published by the `seq` Release below.
                    Ordering::Relaxed,
                    // why: Relaxed; the failure value only re-seeds the loop.
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.val.with_mut(|p| unsafe { (*p).write(value) });
                        // why: Release publishes the payload write above to
                        // the consumer's Acquire `seq` load.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        shared.bell.ring();
                        return Ok(());
                    }
                    Err(cur) => pos = cur,
                }
            } else if seq.wrapping_sub(pos) > cap {
                // seq belongs to the previous lap: the ring is full.
                return Err(TrySendError::Full(value));
            } else {
                // Another producer claimed this ticket; chase the head.
                // why: Relaxed; same ticket-hint role as the initial load.
                pos = shared.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Blocking send: spins (with yields) while the ring is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    thread::yield_now();
                }
            }
        }
    }
}

impl<T> Clone for MpscSender<T> {
    fn clone(&self) -> MpscSender<T> {
        // why: Relaxed; like Arc::clone, creating a handle from an existing
        // one needs no ordering — the handle itself proves count >= 1.
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        MpscSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for MpscSender<T> {
    fn drop(&mut self) {
        // why: AcqRel, like Arc::drop — Release orders this sender's final
        // publishes before the count reaching 0; Acquire on the last drop
        // orders it after every *other* sender's publishes, so the
        // receiver's disconnect re-check sees all final items.
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.bell.ring();
        }
    }
}

impl<T: Send> MpscReceiver<T> {
    fn pop_visible(&mut self) -> Option<T> {
        let shared = &*self.shared;
        let slot = &shared.buf[self.tail & shared.mask];
        // why: Acquire pairs with the producer's Release `seq` store,
        // making the slot payload visible before we read it.
        if slot.seq.load(Ordering::Acquire) == self.tail.wrapping_add(1) {
            let v = slot.val.with(|p| unsafe { (*p).assume_init_read() });
            slot.seq
                // why: Release orders our payload read before the next-lap
                // producer's Acquire claim of this slot.
                .store(self.tail.wrapping_add(shared.mask + 1), Ordering::Release);
            self.tail = self.tail.wrapping_add(1);
            // why: Relaxed; the shared `tail` is bookkeeping for the final
            // Drop (which owns the struct exclusively), not a sync edge.
            shared.tail.store(self.tail, Ordering::Relaxed);
            return Some(v);
        }
        None
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
        if let Some(v) = self.pop_visible() {
            return Ok(v);
        }
        // why: Acquire pairs with each sender-drop's AcqRel `fetch_sub`;
        // seeing 0 orders us after every sender's final publish.
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            // Senders may have published right before dropping; the
            // Acquire above orders us after their final stores.
            if let Some(v) = self.pop_visible() {
                return Ok(v);
            }
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Blocking receive; parks via the doorbell while empty.
    pub fn recv(&mut self) -> Result<T, TryRecvError> {
        loop {
            match self.try_recv() {
                Ok(v) => return Ok(v),
                Err(TryRecvError::Disconnected) => return Err(TryRecvError::Disconnected),
                Err(TryRecvError::Empty) => {
                    self.shared.bell.prepare_sleep();
                    let shared = &*self.shared;
                    let slot = &shared.buf[self.tail & shared.mask];
                    // why: Acquire on `seq`, as in `pop_visible`: this is
                    // the post-prepare_sleep re-check of the same edge.
                    let visible = slot.seq.load(Ordering::Acquire) == self.tail.wrapping_add(1);
                    // why: Acquire on `senders`, as in `try_recv`: a
                    // disconnect racing the park must be observed here.
                    if visible || shared.senders.load(Ordering::Acquire) == 0 {
                        shared.bell.cancel_sleep();
                        continue;
                    }
                    shared.bell.sleep();
                }
            }
        }
    }

    /// Drain up to `max` immediately-visible items into `out`.
    ///
    /// # Partial-progress contract
    ///
    /// Returns how many items were moved; `0` is not an error (empty vs
    /// disconnected is distinguished via [`MpscReceiver::try_recv`]).
    /// Each slot is freed (its `seq` released) only after its payload
    /// has been appended to `out`, so producers can never overwrite an
    /// undelivered item.
    pub fn recv_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop_visible() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl<T> Drop for MpscReceiver<T> {
    fn drop(&mut self) {
        // why: Relaxed; final-Drop bookkeeping only (see `pop_visible`).
        self.shared.tail.store(self.tail, Ordering::Relaxed);
        // why: Release pairs with the producers' Acquire `closed` load in
        // `try_send`, ordering our final slot releases before the flag.
        self.shared.closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_round_trip_in_order() {
        let (mut tx, mut rx) = spsc::<u64>(4);
        for i in 0..3 {
            tx.try_send(i).unwrap();
        }
        for i in 0..3 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn spsc_wraps_at_capacity_boundary() {
        // Capacity 4: push/pop far past one lap so indices wrap the mask
        // repeatedly; order and values must survive.
        let (mut tx, mut rx) = spsc::<usize>(4);
        for lap in 0..64 {
            for i in 0..4 {
                tx.try_send(lap * 4 + i).unwrap();
            }
            assert!(matches!(tx.try_send(999), Err(TrySendError::Full(999))));
            for i in 0..4 {
                assert_eq!(rx.try_recv(), Ok(lap * 4 + i));
            }
        }
    }

    #[test]
    fn spsc_sender_drop_drains_then_disconnects() {
        let (mut tx, mut rx) = spsc::<u32>(8);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn spsc_receiver_drop_fails_sends() {
        let (mut tx, rx) = spsc::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_send(7), Err(TrySendError::Disconnected(7))));
        assert!(matches!(tx.send(8), Err(SendError(8))));
    }

    #[test]
    fn spsc_drop_with_items_in_flight_frees_them() {
        // Drop both halves with undelivered heap payloads; Miri (and the
        // leak checker) verifies the in-flight Arcs are freed.
        let (mut tx, rx) = spsc::<Arc<Vec<u64>>>(8);
        let payload = Arc::new(vec![1, 2, 3]);
        for _ in 0..5 {
            tx.try_send(Arc::clone(&payload)).unwrap();
        }
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn spsc_batch_send_and_batch_recv() {
        let (mut tx, mut rx) = spsc::<usize>(8);
        tx.send_batch(0..6).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 4), 4);
        assert_eq!(rx.recv_batch(&mut out, 100), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.recv_batch(&mut out, 100), 0);
    }

    #[test]
    fn spsc_batch_send_larger_than_capacity() {
        // The batch must flush-and-continue when it fills the ring while
        // a consumer drains concurrently.
        let (mut tx, mut rx) = spsc::<usize>(4);
        let n = 1000;
        let h = thread::spawn(move || {
            let mut got = Vec::with_capacity(n);
            while got.len() < n {
                match rx.recv() {
                    Ok(v) => got.push(v),
                    Err(_) => break,
                }
            }
            got
        });
        tx.send_batch(0..n).unwrap();
        drop(tx);
        let got = h.join().unwrap();
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn spsc_try_send_batch_partial_progress_on_full() {
        // Capacity 4 ring, 7 queued items: exactly 4 transfer, 3 stay
        // queued in order; after a partial drain the retry moves more.
        let (mut tx, mut rx) = spsc::<u32>(4);
        let mut q: VecDeque<u32> = (0..7).collect();
        assert_eq!(tx.try_send_batch(&mut q), Ok(4));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(
            tx.try_send_batch(&mut q),
            Ok(0),
            "full ring is not an error"
        );
        assert_eq!(rx.try_recv(), Ok(0));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(tx.try_send_batch(&mut q), Ok(2));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![6]);
        let mut out = Vec::new();
        rx.recv_batch(&mut out, 100);
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(tx.try_send_batch(&mut q), Ok(1));
        assert!(q.is_empty());
        assert_eq!(rx.try_recv(), Ok(6));
    }

    #[test]
    fn spsc_try_send_batch_disconnect_keeps_queue() {
        let (mut tx, rx) = spsc::<u32>(4);
        drop(rx);
        let mut q: VecDeque<u32> = (0..3).collect();
        assert_eq!(
            tx.try_send_batch(&mut q),
            Err(TrySendError::Disconnected(()))
        );
        assert_eq!(
            q.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 2],
            "disconnect must not drop queued items"
        );
    }

    #[test]
    fn spsc_send_batch_disconnect_hands_back_remainder() {
        let (mut tx, rx) = spsc::<u32>(4);
        drop(rx);
        let err = tx.send_batch(0..5).unwrap_err();
        assert_eq!(
            err.0.iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn spsc_cross_thread_hammer_with_blocking() {
        let (mut tx, mut rx) = spsc::<u64>(16);
        let n: u64 = if cfg!(miri) { 300 } else { 100_000 };
        let h = thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        for i in 0..n {
            assert_eq!(rx.recv(), Ok(i));
        }
        h.join().unwrap();
        assert_eq!(rx.recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpsc_round_trip_single_producer() {
        let (tx, mut rx) = mpsc::<u64>(4);
        for i in 0..3 {
            tx.try_send(i).unwrap();
        }
        for i in 0..3 {
            assert_eq!(rx.try_recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn mpsc_full_and_wraparound() {
        let (tx, mut rx) = mpsc::<usize>(4);
        for lap in 0..32 {
            for i in 0..4 {
                tx.try_send(lap * 4 + i).unwrap();
            }
            assert!(matches!(tx.try_send(999), Err(TrySendError::Full(999))));
            for i in 0..4 {
                assert_eq!(rx.try_recv(), Ok(lap * 4 + i));
            }
        }
    }

    #[test]
    fn mpsc_all_senders_dropped_drains_then_disconnects() {
        let (tx, mut rx) = mpsc::<u32>(8);
        let tx2 = tx.clone();
        tx.try_send(1).unwrap();
        tx2.try_send(2).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx2);
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn mpsc_receiver_drop_fails_sends() {
        let (tx, rx) = mpsc::<u32>(4);
        drop(rx);
        assert!(matches!(tx.try_send(7), Err(TrySendError::Disconnected(7))));
    }

    #[test]
    fn mpsc_drop_with_items_in_flight_frees_them() {
        let (tx, rx) = mpsc::<Arc<Vec<u64>>>(8);
        let payload = Arc::new(vec![1, 2, 3]);
        for _ in 0..5 {
            tx.try_send(Arc::clone(&payload)).unwrap();
        }
        drop(rx);
        drop(tx);
        assert_eq!(Arc::strong_count(&payload), 1);
    }

    #[test]
    fn mpsc_preserves_per_producer_fifo() {
        // N producers each send an ascending sequence tagged with their
        // id; the consumer must observe every producer's items in order
        // even though the global interleaving is arbitrary.
        let producers = 4usize;
        let per = if cfg!(miri) { 50u64 } else { 10_000u64 };
        let (tx, mut rx) = mpsc::<(usize, u64)>(16);
        let handles: Vec<_> = (0..producers)
            .map(|id| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..per {
                        tx.send((id, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next = vec![0u64; producers];
        let mut total = 0u64;
        loop {
            match rx.recv() {
                Ok((id, i)) => {
                    assert_eq!(i, next[id], "producer {id} reordered");
                    next[id] += 1;
                    total += 1;
                }
                Err(TryRecvError::Disconnected) => break,
                Err(TryRecvError::Empty) => unreachable!("recv never returns Empty"),
            }
        }
        assert_eq!(total, producers as u64 * per);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn mpsc_batch_recv_drains_visible_items() {
        let (tx, mut rx) = mpsc::<usize>(8);
        for i in 0..5 {
            tx.try_send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.recv_batch(&mut out, 3), 3);
        assert_eq!(rx.recv_batch(&mut out, 100), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn doorbell_wakes_parked_consumer() {
        // Consumer parks on an empty ring; producer sends after a delay.
        // If the doorbell lost the wakeup this test would hang (the
        // harness timeout catches it).
        let (mut tx, mut rx) = spsc::<u32>(4);
        let h = thread::spawn(move || rx.recv());
        if !cfg!(miri) {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), Ok(42));
    }
}
