//! The concurrency seam: every atomic, cell, thread, and lock primitive
//! the transport hot path ([`crate::ring`], [`crate::chan`]) touches is
//! imported from here rather than from `std` directly.
//!
//! * **`model-check` off** (the default, and the only configuration that
//!   ships): plain re-exports of the std types, plus a
//!   `#[repr(transparent)]` [`cell::UnsafeCell`] wrapper whose accessors
//!   are `#[inline(always)]` closures around the raw pointer — the
//!   compiled code is identical to using std directly.
//! * **`model-check` on**: the same paths resolve to the `mssp-check`
//!   shims, which dispatch per-thread at runtime — threads inside a model
//!   execution hit the checker's baton-passing scheduler (every operation
//!   a schedule point, every relaxed load a recorded stale-value choice),
//!   while every other thread falls through to real std behavior.
//!
//! The two worlds expose the same API on purpose: `ring.rs` and `chan.rs`
//! compile against this module unchanged in either mode. Keep additions
//! mirrored (add to the shim in `mssp-check` first, then re-export here).

#[cfg(not(feature = "model-check"))]
// The seam mirrors the shim's full surface even where the transport does
// not currently use every item (MutexGuard, AtomicU64).
#[allow(unused_imports)]
mod imp {
    pub use std::thread;

    pub use std::sync::{Condvar, Mutex, MutexGuard};

    /// Atomic integers, fences, and memory orderings (std's own).
    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Interior-mutable cells with the checker's closure-based access API.
    pub mod cell {
        /// An `UnsafeCell` exposing `with`/`with_mut` closures so the same
        /// call sites compile under the model checker's race-tracked shim.
        /// Transparent over `std::cell::UnsafeCell`; zero overhead.
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct UnsafeCell<T: ?Sized>(std::cell::UnsafeCell<T>);

        impl<T> UnsafeCell<T> {
            /// Wrap a value.
            #[inline(always)]
            pub const fn new(value: T) -> UnsafeCell<T> {
                UnsafeCell(std::cell::UnsafeCell::new(value))
            }
        }

        impl<T: ?Sized> UnsafeCell<T> {
            /// Shared (read) access to the raw pointer.
            #[inline(always)]
            pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
                f(self.0.get())
            }

            /// Exclusive (write) access to the raw pointer. The caller is
            /// responsible for the exclusion (ring index protocol).
            #[inline(always)]
            pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
                f(self.0.get())
            }

            /// Exclusive access through a `&mut` borrow (drop paths).
            #[inline(always)]
            pub fn get_mut(&mut self) -> &mut T {
                unsafe { &mut *self.0.get() }
            }
        }
    }
}

#[cfg(feature = "model-check")]
#[allow(unused_imports)]
mod imp {
    pub use mssp_check::shim::thread;

    pub use mssp_check::shim::{Condvar, Mutex, MutexGuard};

    pub use mssp_check::shim::{atomic, cell};
}

pub use imp::*;
