//! A threaded MSSP executor: slaves run on real OS threads.
//!
//! The discrete-time [`crate::Engine`] is the reference implementation —
//! deterministic and cost-model-driven. This module demonstrates the same
//! protocol on actual parallel hardware: worker threads execute
//! speculative tasks concurrently while the coordinator thread runs the
//! master and the in-order verify/commit unit.
//!
//! # Checkpoint-snapshot live-ins
//!
//! Slaves in the paper execute against the *master's checkpoint* — the
//! architected state as of the task's spawn — never against a live,
//! mutating machine. We mirror that here: the coordinator owns the
//! architected [`MachineState`] outright (no lock), and every spawned
//! [`WorkItem`] carries an immutable `Arc<MachineState>` snapshot
//! published at the most recent commit or recovery. Workers resolve a
//! task's live-ins from that spawn-time snapshot plus the task's private
//! overlay, so the hot execute loop acquires **no shared lock at all**.
//! Snapshot publication is cheap: `SparseMem` pages are `Arc`-backed
//! copy-on-write, so cloning architected state is O(resident pages)
//! refcount bumps and each commit only unshares the pages it touches.
//!
//! Reading a slightly stale snapshot can never corrupt state — recorded
//! live-ins are checked against architected state at commit (the
//! memoization test), so a stale read is a squash (a performance event),
//! not a correctness event. Staleness is bounded by the epoch counter:
//! workers abandon tasks from squashed epochs at entry, at every task
//! boundary crossing, and every 64 instructions.
//!
//! Wall-clock timing is nondeterministic, but the committed architected
//! state is not: verification forces every interleaving to the sequential
//! result, which the test suite asserts against [`crate::Engine`] and the
//! sequential machine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mssp_distill::Distilled;
use mssp_isa::Program;
use mssp_machine::{step, MachineState};

use crate::chan::{channel, TryRecvError};
use crate::master::{Master, MasterStall};
use crate::task::{BoundarySet, RecoveryStorage, SegmentRules, Task, TaskEnd, TaskId};
use crate::{verify_and_commit, VerifyOutcome};
use crate::{EngineConfig, EngineError, EngineStats, SquashReason};

/// Result of a threaded MSSP run.
#[derive(Debug)]
pub struct ThreadedRun {
    /// The final architected state (always equals sequential execution).
    pub state: MachineState,
    /// Statistics (cycle fields are zero: wall-clock is not simulated).
    pub stats: EngineStats,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
}

struct WorkItem {
    /// Epoch the task was spawned in; bumped on every squash.
    epoch: u64,
    /// Checkpoint of architected state as of this task's spawn.
    snapshot: Arc<MachineState>,
    task: Task,
}

struct WorkResult {
    epoch: u64,
    task: Task,
    end: TaskEnd,
}

/// Runs the MSSP protocol with `config.num_slaves` worker threads.
///
/// # Errors
///
/// Returns [`EngineError::RecoveryFault`] if the original program faults
/// during non-speculative recovery (a malformed program), or
/// [`EngineError::RecoveryLimit`] if a recovery segment exceeds its cap.
///
/// # Panics
///
/// Panics if a worker thread panics.
#[allow(clippy::too_many_lines)]
pub fn run_threaded(
    original: &Program,
    distilled: &Distilled,
    config: EngineConfig,
) -> Result<ThreadedRun, EngineError> {
    assert!(config.num_slaves > 0, "MSSP needs at least one slave");
    let start_time = std::time::Instant::now();
    let boundaries = Arc::new(BoundarySet::new(distilled.boundaries().clone()));
    let crossings_per_task = distilled.crossings_per_task().max(1);
    let current_epoch = Arc::new(AtomicU64::new(0));

    let (work_tx, work_rx) = channel::<WorkItem>();
    let (result_tx, result_rx) = channel::<WorkResult>();

    let mut stats = EngineStats::default();

    std::thread::scope(|scope| -> Result<MachineState, EngineError> {
        // ---- workers ----
        for _ in 0..config.num_slaves {
            let work_rx = work_rx.clone();
            let result_tx = result_tx.clone();
            let boundaries = Arc::clone(&boundaries);
            let current_epoch = Arc::clone(&current_epoch);
            let original = &*original;
            let max_task = config.max_task_instrs;
            scope.spawn(move || {
                let rules = SegmentRules {
                    boundaries: &boundaries,
                    crossings_per_task,
                    max_instrs: max_task,
                };
                while let Ok(WorkItem {
                    epoch,
                    snapshot,
                    mut task,
                }) = work_rx.recv()
                {
                    // The entire segment executes against the spawn-time
                    // checkpoint: no lock, no shared mutable state. The
                    // closure polls the epoch so squashed work is dropped
                    // at entry, at boundary crossings, and every 64
                    // instructions.
                    let end = task.run_segment(original, &snapshot, &rules, || {
                        current_epoch.load(Ordering::Relaxed) != epoch
                    });
                    if result_tx.send(WorkResult { epoch, task, end }).is_err() {
                        return;
                    }
                }
            });
        }
        drop(result_tx); // coordinator keeps only the receiver
        drop(work_rx); // workers keep the competitive-consumption clones

        // ---- coordinator: master + in-order verify/commit ----
        //
        // The coordinator is the sole owner of architected state; workers
        // only ever see the immutable snapshots it publishes.
        let mut arch = MachineState::boot(original);
        let mut snapshot = Arc::new(arch.clone());
        let entry = arch.pc();
        let mut master = Master::restart_at(distilled, entry, true, arch.clone());
        let mut last_spawned: Option<u64> = None;
        let mut next_id = 0u64;
        let mut in_flight: std::collections::VecDeque<TaskId> = std::collections::VecDeque::new();
        let mut done: std::collections::BTreeMap<u64, (Task, TaskEnd)> =
            std::collections::BTreeMap::new();
        let mut epoch = 0u64;
        let mut halted = false;
        let mut master_steps_since_spawn = 0u64;

        'run: while !halted {
            // 1. Drive the master while it has headroom.
            let mut spawned_this_round = false;
            for _ in 0..256 {
                if master.status() != MasterStall::Active {
                    break;
                }
                if master.pending_spawn().is_some() {
                    if in_flight.len() >= config.num_slaves * 2 {
                        break; // enough speculation outstanding
                    }
                    let (start, overlay) = master.take_spawn(last_spawned);
                    let id = TaskId(next_id);
                    next_id += 1;
                    let task = Task::new(id, start, 0, overlay);
                    stats.spawned_tasks += 1;
                    in_flight.push_back(id);
                    last_spawned = Some(id.0);
                    master_steps_since_spawn = 0;
                    work_tx
                        .send(WorkItem {
                            epoch,
                            snapshot: Arc::clone(&snapshot),
                            task,
                        })
                        .unwrap_or_else(|_| unreachable!("workers alive"));
                    spawned_this_round = true;
                    continue;
                }
                if master.step(distilled).is_some() {
                    stats.master_instructions += 1;
                    master_steps_since_spawn += 1;
                    if master_steps_since_spawn > config.master_runahead {
                        master.mark_lost();
                    }
                } else {
                    break;
                }
            }

            // 2. Collect results.
            let blocked_on_result = in_flight
                .front()
                .is_some_and(|id| !done.contains_key(&id.0));
            let mut received = false;
            loop {
                let msg = if blocked_on_result && !received && !spawned_this_round {
                    // Nothing else to do: block for the oldest result.
                    match result_rx.recv() {
                        Ok(m) => m,
                        Err(()) => break,
                    }
                } else {
                    match result_rx.try_recv() {
                        Ok(m) => m,
                        Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                    }
                };
                received = true;
                if msg.epoch == epoch {
                    done.insert(msg.task.id.0, (msg.task, msg.end));
                }
            }

            // 3. Verify/commit in order (shared with the discrete engine).
            while let Some(&oldest) = in_flight.front() {
                let Some((task, end)) = done.remove(&oldest.0) else {
                    break;
                };
                in_flight.pop_front();
                match verify_and_commit(&mut arch, &task, end) {
                    VerifyOutcome::Commit {
                        end_pc: _,
                        halted: h,
                    } => {
                        snapshot = Arc::new(arch.clone());
                        stats.committed_tasks += 1;
                        stats.committed_instructions += task.executed;
                        stats.live_in_cells += task.live_ins.len() as u64;
                        stats.live_out_cells += task.writes.len() as u64;
                        master.on_commit(task.id.0);
                        if h {
                            break 'run;
                        }
                    }
                    VerifyOutcome::Squash(reason) => {
                        // Squash everything younger and run recovery.
                        stats.squashed_tasks += 1 + in_flight.len() as u64;
                        match reason {
                            SquashReason::WrongPath => stats.squashes_wrong_path += 1,
                            SquashReason::LiveInMismatch => stats.squashes_live_in += 1,
                            SquashReason::Overrun => stats.squashes_overrun += 1,
                            SquashReason::Fault => stats.squashes_fault += 1,
                        }
                        epoch += 1;
                        current_epoch.store(epoch, Ordering::Relaxed);
                        in_flight.clear();
                        done.clear();
                        let recovered = run_recovery(
                            original,
                            &boundaries,
                            crossings_per_task,
                            &mut arch,
                            config.max_recovery_instrs,
                        )?;
                        stats.recovery_segments += 1;
                        stats.recovery_instructions += recovered.0;
                        stats.committed_instructions += recovered.0;
                        snapshot = Arc::new(arch.clone());
                        if recovered.1 {
                            break 'run;
                        }
                        let pc = arch.pc();
                        master = Master::restart_at(distilled, pc, true, arch.clone());
                        last_spawned = None;
                        master_steps_since_spawn = 0;
                        break;
                    }
                }
            }

            // 4. Master starved (lost/halted with nothing in flight):
            //    sequential recovery.
            if !halted && in_flight.is_empty() && master.status() != MasterStall::Active {
                let recovered = run_recovery(
                    original,
                    &boundaries,
                    crossings_per_task,
                    &mut arch,
                    config.max_recovery_instrs,
                )?;
                stats.recovery_segments += 1;
                stats.recovery_instructions += recovered.0;
                stats.committed_instructions += recovered.0;
                snapshot = Arc::new(arch.clone());
                if recovered.1 {
                    halted = true;
                } else {
                    let pc = arch.pc();
                    master = Master::restart_at(distilled, pc, true, arch.clone());
                    last_spawned = None;
                    master_steps_since_spawn = 0;
                }
            }
        }

        drop(work_tx); // workers drain and exit
        Ok(arch)
    })
    .map(|state| ThreadedRun {
        state,
        stats,
        elapsed: start_time.elapsed(),
    })
}

/// Executes one non-speculative segment from the architected PC to the
/// next task end, committing atomically. Returns (instructions, halted).
fn run_recovery(
    original: &Program,
    boundaries: &BoundarySet,
    crossings_per_task: u64,
    arch: &mut MachineState,
    cap: u64,
) -> Result<(u64, bool), EngineError> {
    let mut writes = mssp_machine::Delta::new();
    let mut pc = arch.pc();
    let mut executed = 0u64;
    let mut crossings = 0u64;
    let halted = loop {
        let info = {
            let mut storage = RecoveryStorage {
                writes: &mut writes,
                arch,
            };
            step(&mut storage, original, pc).map_err(EngineError::RecoveryFault)?
        };
        if info.halted {
            break true;
        }
        executed += 1;
        pc = info.next_pc;
        if executed > cap {
            return Err(EngineError::RecoveryLimit);
        }
        if boundaries.contains(pc) {
            crossings += 1;
            if crossings >= crossings_per_task {
                break false;
            }
        }
    };
    arch.apply(&writes);
    arch.set_pc(pc);
    Ok((executed, halted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitCost;
    use mssp_analysis::Profile;
    use mssp_distill::{distill, DistillConfig};
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;
    use mssp_machine::SeqMachine;

    fn fixture() -> (Program, Distilled) {
        let p = assemble(
            "main:  addi s0, zero, 2000
             loop:  add  s1, s1, s0
                    mul  t0, s0, s0
                    add  s1, s1, t0
                    sd   s1, -8(sp)
                    addi s0, s0, -1
                    bnez s0, loop
                    halt",
        )
        .unwrap();
        let profile = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        (p, d)
    }

    #[test]
    fn threaded_matches_sequential() {
        let (p, d) = fixture();
        let mut seq = SeqMachine::boot(&p);
        seq.run(u64::MAX).unwrap();
        let run = run_threaded(&p, &d, EngineConfig::default()).unwrap();
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert!(run.stats.committed_instructions > 0);
    }

    #[test]
    fn threaded_matches_discrete_engine() {
        let (p, d) = fixture();
        let reference = crate::Engine::new(&p, &d, EngineConfig::default(), UnitCost)
            .run()
            .unwrap();
        let run = run_threaded(&p, &d, EngineConfig::default()).unwrap();
        assert_eq!(run.state.reg(Reg::S1), reference.state.reg(Reg::S1));
    }

    #[test]
    fn threaded_with_two_workers_repeats_deterministically_in_state() {
        let (p, d) = fixture();
        let cfg = EngineConfig {
            num_slaves: 2,
            ..EngineConfig::default()
        };
        let a = run_threaded(&p, &d, cfg).unwrap();
        let b = run_threaded(&p, &d, cfg).unwrap();
        // Wall-clock and task counts may differ; committed state may not.
        assert_eq!(a.state.reg(Reg::S1), b.state.reg(Reg::S1));
    }
}
