//! A threaded MSSP executor: slaves run on real OS threads.
//!
//! The discrete-time [`crate::Engine`] is the reference implementation —
//! deterministic and cost-model-driven. This module demonstrates the same
//! protocol on actual parallel hardware: the master interpreter and the
//! slave tasks each run on their own OS thread, and the coordinator
//! thread runs only the in-order verify/commit unit.
//!
//! # Contention-free hot path
//!
//! Prophet's analysis (and our own profiles) say commit bandwidth and
//! communication — not slave count — cap CMP speculation, so the
//! steady-state dispatch/execute/commit cycle takes **no mutex and
//! performs no heap allocation**:
//!
//! * **Lock-free rings.** Each worker owns a bounded SPSC ring
//!   ([`crate::ring::spsc`]) the coordinator dispatches into; results,
//!   spawns, stalls, and thread obituaries flow back through one bounded
//!   MPSC ring ([`crate::ring::mpsc`]), whose per-producer FIFO keeps a
//!   master's spawns ordered before its stall report — the same
//!   invariant the old single mutex channel provided. Commit
//!   notifications and restarts ride an SPSC ring to the master.
//!   Dispatch and draining are batched: one ring publish covers every
//!   task bound for a worker in a drain cycle, and the coordinator pops
//!   results in batches.
//!
//! * **Delta recycling.** Task live-in/write buffers, the shipped
//!   committed view, and commit-log entries are plain [`Delta`]s cycled
//!   through a [`DeltaArena`] — buffers travel coordinator → worker →
//!   coordinator inside the work/result messages and return to the pool
//!   at commit or squash, so after warm-up the task cycle allocates
//!   nothing. (The master still allocates its per-spawn prediction
//!   overlay; that is the prediction path, not the dispatch/commit
//!   path.)
//!
//! # O(delta) verify/commit
//!
//! The verify/commit unit is MSSP's serialization point, so everything on
//! the coordinator is sized by the *task's footprint*, never by machine
//! state:
//!
//! * **Worker-side pre-verification.** After finishing a task, the worker
//!   re-checks the recorded live-ins against the immutable snapshot +
//!   committed-view it executed from and ships the set of failing
//!   cells with the result. The coordinator then re-checks only (a) those
//!   failures and (b) live-ins intersecting cells written by tasks
//!   committed *after* the task's spawn sequence number — found by
//!   probing the commit log's suffix with [`Delta::intersects`]. A task
//!   whose re-check set is empty commits without the coordinator reading
//!   a single cell of architected state.
//!
//! * **Incremental snapshot publishing.** Committing no longer clones
//!   architected state. The committed write [`Delta`] is pushed onto an
//!   append-only [`CommitLog`]; the coordinator folds the log suffix
//!   into a running view delta and ships each spawned task the last
//!   materialized base snapshot plus a pooled clone of that view for
//!   the [`crate::task::TaskStorage`] committed layer. A fresh full
//!   snapshot is materialized only when the view crosses a length/size
//!   threshold or on squash.
//!
//! * **Batched commit application.** Commits are applied to architected
//!   state as one [`MachineState::apply_batch`] superimposition over the
//!   unapplied log suffix, deferred until something actually needs to
//!   *read* architected state (a live-in re-check, a squash, a snapshot
//!   materialization, or run end).
//!
//! Soundness is unchanged from the paper's memoization test. A live-in
//! passing pre-verification matched the architected value as of spawn
//! sequence `s` (snapshot + committed view ≡ architected state at `s`,
//! since recovery always bumps the epoch and discards in-flight work).
//! If no commit in `[s, now)` wrote the cell, the architected value at
//! commit time is byte-identical to the value pre-verification compared
//! against, so skipping the re-check returns exactly the oracle's
//! verdict; if any commit did write it, the cell is in the log suffix
//! intersection and is re-checked. A task whose spawn sequence predates
//! the retained window is re-checked in full — the suffix probe cannot
//! prove freshness for commits that were compacted away.
//! [`verify_and_commit`] remains the shared oracle —
//! `EngineConfig::cross_check_commits` re-runs it on a cloned state for
//! every decision and panics on divergence, which the differential test
//! suite exercises at 1/2/4/8 workers.
//!
//! Reading a slightly stale snapshot can never corrupt state — recorded
//! live-ins are checked against architected state at commit, so a stale
//! read is a squash (a performance event), not a correctness event.
//! Staleness is bounded by the epoch counter: workers abandon tasks from
//! squashed epochs at entry, at every task boundary crossing, and every
//! 64 instructions.
//!
//! Wall-clock timing is nondeterministic, but the committed architected
//! state is not: verification forces every interleaving to the sequential
//! result, which the test suite asserts against [`crate::Engine`] and the
//! sequential machine.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use mssp_analysis::Profile;
use mssp_distill::{Distilled, Tier};
use mssp_isa::Program;
use mssp_machine::{expand_mask, step, Cell, Delta, DeltaArena, MachineState};

use crate::adaptive::{AdaptiveController, AdaptiveReport, Recompiler};
use crate::master::{Master, MasterStall};
use crate::predictor::Predictor;
use crate::ring::{self, MpscReceiver, MpscSender, SpscReceiver, SpscSender, TryRecvError};
use crate::task::{BoundarySet, RecoveryStorage, SegmentRules, Task, TaskEnd, TaskId};
use crate::{verify_and_commit, VerifyOutcome};
use crate::{EngineConfig, EngineError, EngineStats, SquashReason};

/// Commit-log length after which the coordinator materializes a fresh
/// base snapshot instead of letting the committed view grow unboundedly.
const MAX_PENDING_DELTAS: u64 = 32;

/// Total cells across pending deltas after which a fresh base snapshot is
/// materialized (bounds view-clone cost for write-heavy tasks).
const MAX_PENDING_CELLS: usize = 1024;

/// Per-worker task ring capacity. Round-robin dispatch over a
/// `2 × slaves` speculation window keeps per-worker queues tiny; the
/// headroom absorbs stale items queued across a squash.
const WORK_RING_CAP: usize = 64;

/// Control ring (coordinator → master) capacity: one `Committed` per
/// commit plus rare restarts; the master drains it every outer loop.
const CTRL_RING_CAP: usize = 1024;

/// Result messages popped per coordinator drain cycle.
const DRAIN_BATCH: usize = 64;

/// How a threaded run can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadedError {
    /// The protocol itself failed — see [`EngineError`].
    Engine(EngineError),
    /// A worker or master thread died (panicked) mid-run.
    WorkerDied,
}

impl From<EngineError> for ThreadedError {
    fn from(e: EngineError) -> ThreadedError {
        ThreadedError::Engine(e)
    }
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::Engine(e) => write!(f, "{e}"),
            ThreadedError::WorkerDied => write!(f, "a worker thread died mid-run"),
        }
    }
}

impl std::error::Error for ThreadedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ThreadedError::Engine(e) => Some(e),
            ThreadedError::WorkerDied => None,
        }
    }
}

/// Result of a threaded MSSP run.
#[derive(Debug)]
pub struct ThreadedRun {
    /// The final architected state (always equals sequential execution).
    pub state: MachineState,
    /// Statistics (cycle fields are zero: wall-clock is not simulated).
    pub stats: EngineStats,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Adaptive re-distillation summary, when the run used
    /// [`run_threaded_adaptive`].
    pub adaptive: Option<AdaptiveReport>,
}

struct WorkItem {
    /// Epoch the task was spawned in; bumped on every squash.
    epoch: u64,
    /// Last materialized base snapshot.
    base: Arc<MachineState>,
    /// Folded writes committed after `base` was materialized; pooled.
    /// `base` + `view` ≡ architected state as of the task's spawn
    /// sequence number (which the coordinator tracks in `in_flight`).
    view: Delta,
    task: Task,
}

struct WorkResult {
    epoch: u64,
    task: Task,
    end: TaskEnd,
    /// Pre-verification outcome: live-in cells that did *not* match the
    /// spawn-time view (`None` when the task overran or faulted, which
    /// squashes before any live-in is consulted).
    failed: Option<Vec<Cell>>,
    /// The committed view handed out at dispatch, riding back for
    /// recycling.
    view: Delta,
}

/// Everything the coordinator can hear: worker results, master spawns,
/// master stalls, and thread obituaries — one MPSC ring whose
/// per-producer FIFO keeps a master's spawns in spawn order relative to
/// its stall report.
enum CoordMsg {
    Result(WorkResult),
    Spawn {
        gen: u64,
        id: u64,
        start_pc: u64,
        overlay: Vec<Arc<Delta>>,
    },
    MasterStalled {
        gen: u64,
    },
    ThreadDied,
}

/// Coordinator → master control: restart after recovery, and commit
/// notifications so the master can prune its live overlay segments.
enum CtrlMsg {
    Restart {
        gen: u64,
        pc: u64,
        base: Box<MachineState>,
        /// A hot-swapped distilled program to install before restarting;
        /// `None` restarts on whatever the master currently runs.
        swap: Option<Arc<Distilled>>,
    },
    Committed {
        gen: u64,
        task_id: u64,
    },
}

/// Notifies the coordinator if the owning thread unwinds, so it returns
/// [`ThreadedError::WorkerDied`] instead of blocking forever on a result
/// that will never arrive. Normal exits send nothing.
struct DeadManSwitch {
    tx: MpscSender<CoordMsg>,
}

impl Drop for DeadManSwitch {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send(CoordMsg::ThreadDied);
        }
    }
}

/// The append-only commit log: a sliding window over the sequence of
/// committed write deltas. `start` is the sequence number of the oldest
/// retained entry; entries below it have been compacted away (their
/// buffers returned to the arena) once no in-flight task or base
/// snapshot could still need them.
struct CommitLog {
    deltas: VecDeque<Delta>,
    start: u64,
}

impl CommitLog {
    fn new() -> CommitLog {
        CommitLog {
            deltas: VecDeque::new(),
            start: 0,
        }
    }

    /// Sequence number the *next* commit will get (= commits so far).
    fn seq(&self) -> u64 {
        self.start + self.deltas.len() as u64
    }

    fn push(&mut self, delta: Delta) {
        self.deltas.push_back(delta);
    }

    /// Entries committed at sequence `seq` or later.
    fn suffix(&self, seq: u64) -> impl Iterator<Item = &Delta> + '_ {
        let skip = seq.saturating_sub(self.start).min(self.deltas.len() as u64) as usize;
        self.deltas.iter().skip(skip)
    }

    /// Drops entries below sequence `keep`, recycling their buffers.
    fn compact(&mut self, keep: u64, arena: &mut DeltaArena) {
        while self.start < keep {
            let Some(d) = self.deltas.pop_front() else {
                break;
            };
            arena.put(d);
            self.start += 1;
        }
    }

    /// Empties the window (squash/recovery: every retained delta is now
    /// folded into the materialized base). Sequence numbers keep rising.
    fn clear_window(&mut self, arena: &mut DeltaArena) {
        self.start += self.deltas.len() as u64;
        for d in self.deltas.drain(..) {
            arena.put(d);
        }
    }
}

/// The coordinator's conflict check: which live-in cells must be
/// re-checked against architected state before trusting a pre-verify
/// summary taken at sequence `seq`.
///
/// Always includes the worker-reported failures; adds every live-in
/// intersecting a delta committed at or after `seq` (the summary could
/// not have seen those commits, so it is stale for exactly those cells).
/// An empty return means the summary alone decides the memoization test.
///
/// A `seq` older than the log's retained window demands a **full**
/// re-check: commits in `[seq, start)` are gone, so the suffix probe can
/// no longer prove any live-in fresh. (Compaction keeps the window at or
/// below every in-flight spawn seq, but this function must not silently
/// clamp if that invariant is ever violated — clamping skipped exactly
/// the commits the task never saw.)
fn cells_to_recheck(live_ins: &Delta, failed: &[Cell], log: &CommitLog, seq: u64) -> Vec<Cell> {
    if seq < log.start {
        return live_ins.iter_masked().map(|(c, _)| c).collect();
    }
    if failed.is_empty() && !log.suffix(seq).any(|d| live_ins.intersects(d)) {
        return Vec::new();
    }
    let mut cells: Vec<Cell> = failed.to_vec();
    for delta in log.suffix(seq) {
        cells.extend(live_ins.intersecting_cells(delta));
    }
    cells.sort_unstable();
    cells.dedup();
    cells
}

/// Worker-side pre-verification: compares each recorded live-in against
/// the view the task executed from (`view` = folded committed deltas
/// over `base`), returning the cells whose bytes disagree.
///
/// Live-ins satisfied from the master's *prediction* overlay usually land
/// here (the view has no reason to agree with a prediction) — that is
/// conservative, not wasteful: the coordinator re-checks exactly those
/// cells, which is the check the paper's verify unit performs anyway.
fn pre_verify(live_ins: &Delta, view: Option<&Delta>, base: &MachineState) -> Vec<Cell> {
    let mut failed = Vec::new();
    for (cell, m) in live_ins.iter_masked() {
        let mut out = 0u64;
        let mut need = m.mask;
        if let Some(p) = view.and_then(|v| v.get_masked(cell)) {
            let take = need & p.mask;
            out |= p.value & expand_mask(take);
            need &= !take;
        }
        if need != 0 {
            out |= base.read_cell(cell) & expand_mask(need);
        }
        if out != m.value {
            failed.push(cell);
        }
    }
    failed
}

/// Applies the unapplied commit-log suffix as one superimposition and
/// restores the logical PC. Safe to call redundantly.
fn flush_commits(arch: &mut MachineState, log: &CommitLog, applied_seq: &mut u64, virt_pc: u64) {
    if *applied_seq < log.seq() {
        arch.apply_batch(log.suffix(*applied_seq));
        *applied_seq = log.seq();
    }
    arch.set_pc(virt_pc);
}

/// Non-blocking dispatch of every per-worker outbox into its ring, one
/// publish per worker. Relies on [`SpscSender::try_send_batch`]'s
/// partial-progress contract: a short send (full ring) leaves the unsent
/// tasks queued — in order, none dropped — for the caller's next flush.
///
/// # Errors
///
/// [`ThreadedError::WorkerDied`] when a worker's ring is disconnected;
/// the undispatched tasks stay in their outbox for the caller to unwind.
fn flush_outboxes<T: Send>(
    outboxes: &mut [VecDeque<T>],
    txs: &mut [SpscSender<T>],
) -> Result<(), ThreadedError> {
    for (queue, tx) in outboxes.iter_mut().zip(txs.iter_mut()) {
        if !queue.is_empty() && tx.try_send_batch(queue).is_err() {
            return Err(ThreadedError::WorkerDied);
        }
    }
    Ok(())
}

/// Returns a result's delta buffers to the arena (stale epoch, squash).
fn recycle_result(arena: &mut DeltaArena, r: WorkResult) {
    let WorkResult { mut task, view, .. } = r;
    arena.put(view);
    arena.put(std::mem::take(&mut task.live_ins));
    arena.put(std::mem::take(&mut task.writes));
}

/// How the coordinator obtains recompiled candidates.
/// The background recompile thread's half of the adaptive control
/// plane: request receiver, result sender, and the recompiler to run.
type RecompileWorker = (
    mpsc::Receiver<(Profile, Tier)>,
    mpsc::Sender<(Tier, Result<Distilled, String>)>,
    Recompiler,
);

enum RecompileMode {
    /// Run the recompiler inline on the coordinator at the requesting
    /// task boundary. Blocks commits for the duration — used for
    /// deterministic differential testing against the discrete engine.
    Sync(Recompiler),
    /// Ship `(profile snapshot, tier)` to a background recompile thread
    /// and harvest the candidate at a later task boundary; the hot path
    /// never waits. The channel is plain std `mpsc` — recompiles are
    /// rare control-plane events, not dispatch/commit traffic.
    Async {
        req_tx: mpsc::Sender<(Profile, Tier)>,
        res_rx: mpsc::Receiver<(Tier, Result<Distilled, String>)>,
        /// The in-flight request, for latency accounting; also gates new
        /// sends (the controller's `Pending` phase means at most one).
        sent_at: Option<(Tier, Instant)>,
    },
}

/// The coordinator's adaptive state: divergence controller + recompile
/// transport.
struct ThreadedAdaptive {
    ctl: AdaptiveController,
    mode: RecompileMode,
}

/// Pumps the adaptive loop at a task boundary: harvests a finished
/// background recompile, services a newly requested one, and returns a
/// validated candidate ready to install as `(program, tier,
/// latency_micros)`.
fn adaptive_pump(ad: &mut ThreadedAdaptive) -> Option<(Arc<Distilled>, Tier, u64)> {
    if let RecompileMode::Async {
        res_rx, sent_at, ..
    } = &mut ad.mode
    {
        if sent_at.is_some() {
            if let Ok((tier, result)) = res_rx.try_recv() {
                let (_, started) = sent_at.take().expect("request was in flight");
                let latency = started.elapsed().as_micros() as u64;
                match result {
                    Ok(d) if ad.ctl.validate_candidate(&d) => {
                        ad.ctl.note_recompiled(tier, true);
                        return Some((Arc::new(d), tier, latency));
                    }
                    Ok(_) => ad.ctl.note_candidate_rejected(tier),
                    Err(_) => ad.ctl.note_recompiled(tier, false),
                }
            }
        }
    }
    let tier = ad.ctl.take_request()?;
    match &mut ad.mode {
        RecompileMode::Sync(rec) => {
            let started = Instant::now();
            match rec(ad.ctl.live_profile(), tier) {
                Ok(d) if ad.ctl.validate_candidate(&d) => {
                    ad.ctl.note_recompiled(tier, true);
                    Some((Arc::new(d), tier, started.elapsed().as_micros() as u64))
                }
                Ok(_) => {
                    ad.ctl.note_candidate_rejected(tier);
                    None
                }
                Err(_) => {
                    ad.ctl.note_recompiled(tier, false);
                    None
                }
            }
        }
        RecompileMode::Async {
            req_tx, sent_at, ..
        } => {
            if sent_at.is_none() {
                if req_tx.send((ad.ctl.live_profile().clone(), tier)).is_ok() {
                    *sent_at = Some((tier, Instant::now()));
                } else {
                    // Recompile thread is gone; re-arm so the run can
                    // keep going on the installed program.
                    ad.ctl.note_recompiled(tier, false);
                }
            }
            None
        }
    }
}

/// Runs the MSSP protocol with `config.num_slaves` worker threads plus a
/// dedicated master thread; the calling thread becomes the verify/commit
/// coordinator.
///
/// # Errors
///
/// Returns [`ThreadedError::Engine`] if the original program faults
/// during non-speculative recovery or a recovery segment exceeds its cap,
/// and [`ThreadedError::WorkerDied`] if a worker or master thread
/// panics.
///
/// # Panics
///
/// Panics only when `config.cross_check_commits` detects the fast path
/// diverging from the [`verify_and_commit`] oracle (a bug, not an input
/// condition).
pub fn run_threaded(
    original: &Program,
    distilled: &Distilled,
    config: EngineConfig,
) -> Result<ThreadedRun, ThreadedError> {
    run_threaded_inner(original, distilled, config, None)
}

/// [`run_threaded`] with online adaptive re-distillation: `controller`
/// watches the run for divergence from the training profile and
/// `recompiler` produces candidate distilled programs from the live
/// profile (callers wire it to `mssp-lint`'s `redistill_validated`, so
/// every installed program passed the soundness gate). Candidates are
/// installed at commit/recovery task boundaries by bumping the squash
/// epoch — in-flight speculation is abandoned exactly like a squash, and
/// the master restarts on the new program from architected state.
///
/// With `synchronous` set, recompilation runs inline on the coordinator
/// at the requesting boundary — deterministic, for differential testing
/// against the discrete engine. Otherwise a background recompile thread
/// keeps it off the hot path.
///
/// # Errors
///
/// Same as [`run_threaded`]; a panicking recompiler also surfaces as
/// [`ThreadedError::WorkerDied`].
pub fn run_threaded_adaptive(
    original: &Program,
    distilled: &Distilled,
    config: EngineConfig,
    controller: AdaptiveController,
    recompiler: Recompiler,
    synchronous: bool,
) -> Result<ThreadedRun, ThreadedError> {
    run_threaded_inner(
        original,
        distilled,
        config,
        Some((controller, recompiler, synchronous)),
    )
}

fn run_threaded_inner(
    original: &Program,
    distilled: &Distilled,
    config: EngineConfig,
    adaptive: Option<(AdaptiveController, Recompiler, bool)>,
) -> Result<ThreadedRun, ThreadedError> {
    assert!(config.num_slaves > 0, "MSSP needs at least one slave");
    let start_time = std::time::Instant::now();
    let boundaries = Arc::new(BoundarySet::new(distilled.boundaries().clone()));
    let crossings_per_task = distilled.crossings_per_task().max(1);
    let current_epoch = Arc::new(AtomicU64::new(0));

    // Result/coordination ring sized far above the speculation window so
    // producers (workers, master) never meet a full ring in practice.
    let coord_cap = (config.num_slaves * 8).max(1024);
    let (coord_tx, mut coord_rx) = ring::mpsc::<CoordMsg>(coord_cap);
    let (mut ctrl_tx, mut ctrl_rx) = ring::spsc::<CtrlMsg>(CTRL_RING_CAP);
    let mut work_txs = Vec::with_capacity(config.num_slaves);
    let mut work_rxs = Vec::with_capacity(config.num_slaves);
    for _ in 0..config.num_slaves {
        let (tx, rx) = ring::spsc::<WorkItem>(WORK_RING_CAP);
        work_txs.push(tx);
        work_rxs.push(rx);
    }
    let mut hook: Option<ThreadedAdaptive> = None;
    let mut recompile_worker: Option<RecompileWorker> = None;
    if let Some((ctl, rec, synchronous)) = adaptive {
        if synchronous {
            hook = Some(ThreadedAdaptive {
                ctl,
                mode: RecompileMode::Sync(rec),
            });
        } else {
            let (req_tx, req_rx) = mpsc::channel();
            let (res_tx, res_rx) = mpsc::channel();
            hook = Some(ThreadedAdaptive {
                ctl,
                mode: RecompileMode::Async {
                    req_tx,
                    res_rx,
                    sent_at: None,
                },
            });
            recompile_worker = Some((req_rx, res_tx, rec));
        }
    }

    std::thread::scope(|scope| -> Result<ThreadedRun, ThreadedError> {
        // ---- workers ----
        let mut workers = Vec::with_capacity(config.num_slaves);
        for mut work_rx in work_rxs {
            let coord_tx = coord_tx.clone();
            let boundaries = Arc::clone(&boundaries);
            let current_epoch = Arc::clone(&current_epoch);
            let original = &*original;
            let max_task = config.max_task_instrs;
            workers.push(scope.spawn(move || {
                let _guard = DeadManSwitch {
                    tx: coord_tx.clone(),
                };
                worker_loop(
                    original,
                    &boundaries,
                    crossings_per_task,
                    max_task,
                    &current_epoch,
                    &mut work_rx,
                    &coord_tx,
                );
            }));
        }

        // ---- background recompiler (adaptive async mode) ----
        let recompile_handle = recompile_worker.map(|(req_rx, res_tx, mut rec)| {
            scope.spawn(move || {
                while let Ok((profile, tier)) = req_rx.recv() {
                    if res_tx.send((tier, rec(&profile, tier))).is_err() {
                        return;
                    }
                }
            })
        });

        // ---- master ----
        let master_handle = {
            let coord_tx = coord_tx.clone();
            let distilled = &*distilled;
            let num_slaves = config.num_slaves;
            let runahead = config.master_runahead;
            scope.spawn(move || {
                let _guard = DeadManSwitch {
                    tx: coord_tx.clone(),
                };
                master_thread(distilled, num_slaves, runahead, &mut ctrl_rx, &coord_tx)
            })
        };
        drop(coord_tx); // coordinator keeps only the receiver

        // ---- coordinator: the in-order verify/commit unit ----
        let mut stats = EngineStats::default();
        let outcome = coordinate(
            original,
            &boundaries,
            crossings_per_task,
            &config,
            &current_epoch,
            &mut work_txs,
            &mut coord_rx,
            &mut ctrl_tx,
            &mut stats,
            hook.as_mut(),
        );

        // Shut down regardless of outcome: stragglers abandon at the next
        // epoch poll, closed rings end both loops, and joining here
        // consumes any panic so the scope does not re-raise it.
        // why: Relaxed; the epoch is an advisory abandon hint — correctness
        // comes from the epoch tag carried inside each message, and the
        // ring close below is what actually ends the loops.
        current_epoch.store(u64::MAX, Ordering::Relaxed);
        drop(work_txs);
        drop(ctrl_tx);
        drop(coord_rx);
        let mut thread_died = false;
        for handle in workers {
            if handle.join().is_err() {
                thread_died = true;
            }
        }
        match master_handle.join() {
            Ok((instructions, vetoes)) => {
                stats.master_instructions = instructions;
                stats.spawn_vetoes = vetoes;
            }
            Err(_) => thread_died = true,
        }
        // Consuming the hook drops the request sender, which ends the
        // recompile thread's recv loop; join it before returning.
        let adaptive_report = hook.map(|h| {
            let ThreadedAdaptive { ctl, mode } = h;
            drop(mode);
            ctl.into_report()
        });
        if let Some(handle) = recompile_handle {
            if handle.join().is_err() {
                thread_died = true;
            }
        }
        let state = outcome?;
        if thread_died {
            return Err(ThreadedError::WorkerDied);
        }
        Ok(ThreadedRun {
            state,
            stats,
            elapsed: start_time.elapsed(),
            adaptive: adaptive_report,
        })
    })
}

/// Worker thread body: execute tasks against their spawn-time view, then
/// pre-verify the recorded live-ins against that same view. The loop is
/// allocation-free: every buffer it touches arrives in the work item and
/// leaves in the result.
fn worker_loop(
    original: &Program,
    boundaries: &BoundarySet,
    crossings_per_task: u64,
    max_instrs: u64,
    current_epoch: &AtomicU64,
    work_rx: &mut SpscReceiver<WorkItem>,
    coord_tx: &MpscSender<CoordMsg>,
) {
    let rules = SegmentRules {
        boundaries,
        crossings_per_task,
        max_instrs,
    };
    while let Ok(WorkItem {
        epoch,
        base,
        view,
        mut task,
    }) = work_rx.recv()
    {
        // The committed view layers *below* the master's prediction
        // segments (committed state is older than any prediction) and
        // *above* the base snapshot, reproducing architected state as of
        // the spawn sequence number.
        let committed = if view.is_empty() { None } else { Some(&view) };
        // The hot loop: no lock, no shared mutable state. The closure
        // polls the epoch so squashed work is dropped at entry, at
        // boundary crossings, and every 64 instructions.
        let end = task.run_segment_with_view(original, &base, committed, &rules, || {
            // why: Relaxed; a stale read only delays the abandon by one
            // poll interval — squash correctness rests on the coordinator
            // discarding results whose epoch tag mismatches, not on when
            // the worker notices.
            current_epoch.load(Ordering::Relaxed) != epoch
        });
        let failed = match end {
            TaskEnd::Boundary(_) | TaskEnd::Halted(_) => {
                Some(pre_verify(&task.live_ins, committed, &base))
            }
            // Overruns/faults squash before live-ins are consulted.
            TaskEnd::Overrun | TaskEnd::Fault => None,
        };
        // The coordinator never reads the overlay; drop it here to spare
        // the commit path the refcount churn.
        task.overlay = Vec::new();
        let result = WorkResult {
            epoch,
            task,
            end,
            failed,
            view,
        };
        if coord_tx.send(CoordMsg::Result(result)).is_err() {
            return;
        }
    }
}

/// Master thread body: runs the distilled program and streams spawn
/// predictions to the coordinator. Returns `(instructions, vetoes)`:
/// the total distilled instruction count and the spawn-guard veto count,
/// both summed across all restarts.
///
/// The master self-gates on its own `live_segment_count` (pruned by
/// [`CtrlMsg::Committed`]), which tracks uncommitted spawned tasks — the
/// same `2 × slaves` speculation window the discrete engine uses. When it
/// cannot run (stalled, or window full) it parks on the control ring.
fn master_thread(
    distilled: &Distilled,
    num_slaves: usize,
    master_runahead: u64,
    ctrl_rx: &mut SpscReceiver<CtrlMsg>,
    coord_tx: &MpscSender<CoordMsg>,
) -> (u64, u64) {
    let window = num_slaves * 2;
    let mut total = 0u64;
    // Guard vetoes are drained from the live master after every run
    // slice, so restarts and early returns never lose them.
    let mut vetoes = 0u64;
    let mut cur: Option<(u64, Master)> = None;
    // The latest hot-swapped program; `None` means the offline one.
    let mut swapped: Option<Arc<Distilled>> = None;
    let mut last_spawned: Option<u64> = None;
    let mut next_id = 0u64;
    let mut steps_since_spawn = 0u64;
    let mut stall_reported = false;
    loop {
        // Drain control; park when there is nothing to run. The stall
        // report must precede every blocking wait: a master that restarts
        // straight into Lost (unmapped PC) would otherwise never tell the
        // coordinator, and both sides would block forever.
        loop {
            let runnable = cur.as_ref().is_some_and(|(_, m)| {
                m.status() == MasterStall::Active
                    && (m.pending_spawn().is_none() || m.live_segment_count() < window)
            });
            if !stall_reported {
                if let Some((gen, m)) = cur.as_ref() {
                    if m.status() != MasterStall::Active {
                        if coord_tx
                            .send(CoordMsg::MasterStalled { gen: *gen })
                            .is_err()
                        {
                            return (total, vetoes);
                        }
                        stall_reported = true;
                    }
                }
            }
            let msg = if runnable {
                match ctrl_rx.try_recv() {
                    Ok(m) => m,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return (total, vetoes),
                }
            } else {
                match ctrl_rx.recv() {
                    Ok(m) => m,
                    Err(_) => return (total, vetoes),
                }
            };
            match msg {
                CtrlMsg::Restart {
                    gen,
                    pc,
                    base,
                    swap,
                } => {
                    if let Some(d) = swap {
                        swapped = Some(d);
                    }
                    let cur_d = swapped.as_deref().unwrap_or(distilled);
                    cur = Some((gen, Master::restart_at(cur_d, pc, true, *base)));
                    last_spawned = None;
                    steps_since_spawn = 0;
                    stall_reported = false;
                }
                CtrlMsg::Committed { gen, task_id } => {
                    if let Some((g, m)) = cur.as_mut() {
                        if *g == gen {
                            m.on_commit(task_id);
                        }
                    }
                }
            }
        }

        // Run a slice, then loop back to drain control again.
        let Some((gen, master)) = cur.as_mut() else {
            continue;
        };
        for _ in 0..128 {
            if master.status() != MasterStall::Active {
                break;
            }
            if master.pending_spawn().is_some() {
                if master.live_segment_count() >= window {
                    break; // enough speculation outstanding
                }
                let (start_pc, overlay) = master.take_spawn(last_spawned);
                let id = next_id;
                next_id += 1;
                last_spawned = Some(id);
                steps_since_spawn = 0;
                let spawn = CoordMsg::Spawn {
                    gen: *gen,
                    id,
                    start_pc,
                    overlay,
                };
                if coord_tx.send(spawn).is_err() {
                    vetoes += master.take_vetoed_spawns();
                    return (total, vetoes);
                }
                continue;
            }
            if master
                .step(swapped.as_deref().unwrap_or(distilled))
                .is_some()
            {
                total += 1;
                steps_since_spawn += 1;
                if steps_since_spawn > master_runahead {
                    master.mark_lost();
                }
            } else {
                break;
            }
        }
        vetoes += master.take_vetoed_spawns();
    }
}

/// The verify/commit coordinator: owns architected state, dispatches
/// spawns to workers, and commits results in order doing O(write-set)
/// work per task with no steady-state allocation.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn coordinate(
    original: &Program,
    boundaries: &BoundarySet,
    crossings_per_task: u64,
    config: &EngineConfig,
    current_epoch: &AtomicU64,
    work_txs: &mut [SpscSender<WorkItem>],
    coord_rx: &mut MpscReceiver<CoordMsg>,
    ctrl_tx: &mut SpscSender<CtrlMsg>,
    stats: &mut EngineStats,
    mut adaptive: Option<&mut ThreadedAdaptive>,
) -> Result<MachineState, ThreadedError> {
    let mut arena = DeltaArena::new();
    let mut arch = MachineState::boot(original);
    // The logical architected PC: `arch` itself may lag behind by the
    // unapplied commit-log suffix, but `virt_pc` never does, so the
    // wrong-path check needs no flush.
    let mut virt_pc = arch.pc();
    let mut base = Arc::new(arch.clone());
    let mut base_seq = 0u64;
    // Commits at or above this sequence are not yet applied to `arch`.
    let mut applied_seq = 0u64;
    stats.snapshots_materialized += 1;
    let mut log = CommitLog::new();
    // Superimposition of log entries in [base_seq, seq): the committed
    // view cloned into every spawn. Maintained incrementally per commit.
    let mut folded = Delta::new();
    let mut pending_cells = 0usize;
    let mut epoch = 0u64;
    // (task id, spawn sequence number), in spawn = commit order.
    let mut in_flight: VecDeque<(u64, u64)> = VecDeque::new();
    // Finished-but-uncommitted results; the window is tiny (≤ 2×slaves),
    // so a linear scan beats a map and reuses its capacity forever.
    let mut done: Vec<(u64, WorkResult)> = Vec::new();
    let mut inbox: Vec<CoordMsg> = Vec::with_capacity(DRAIN_BATCH);
    let mut outbox: Vec<VecDeque<WorkItem>> = work_txs.iter().map(|_| VecDeque::new()).collect();
    let mut next_worker = 0usize;
    let mut master_stalled = false;
    let mut halted = false;
    // Live-in value predictor. Trained only on architected mismatch
    // values at squash time (verified truth), consulted at spawn — the
    // same train-on-verified-only discipline as the discrete engine, so
    // per-epoch prediction decisions are deterministic across executors.
    let mut predictor = Predictor::new();

    let boot_restart = CtrlMsg::Restart {
        gen: epoch,
        pc: virt_pc,
        base: Box::new(arch.clone()),
        swap: None,
    };
    if ctrl_tx.send(boot_restart).is_err() {
        return Err(ThreadedError::WorkerDied);
    }

    while !halted {
        // 1. Receive spawns, results, and master status in batches.
        //    Block only when there is nothing to commit and no starvation
        //    to handle — in both remaining cases a message is guaranteed
        //    to arrive (an in-flight result, a spawn, a stall report, or
        //    a thread obituary).
        let mut received = false;
        loop {
            let oldest_ready = in_flight
                .front()
                .is_some_and(|&(id, _)| done.iter().any(|&(d, _)| d == id));
            let starved = in_flight.is_empty() && master_stalled;
            inbox.clear();
            if oldest_ready || starved || received {
                if coord_rx.recv_batch(&mut inbox, DRAIN_BATCH) == 0 {
                    break;
                }
            } else {
                match coord_rx.recv() {
                    Ok(m) => {
                        inbox.push(m);
                        coord_rx.recv_batch(&mut inbox, DRAIN_BATCH - 1);
                    }
                    Err(_) => return Err(ThreadedError::WorkerDied),
                }
            }
            received = true;
            for msg in inbox.drain(..) {
                match msg {
                    CoordMsg::Result(r) => {
                        if r.epoch == epoch {
                            done.push((r.task.id.0, r));
                        } else {
                            recycle_result(&mut arena, r);
                        }
                    }
                    CoordMsg::Spawn {
                        gen,
                        id,
                        start_pc,
                        overlay,
                    } => {
                        if gen != epoch {
                            continue; // pre-squash prediction; already dead
                        }
                        let seq = log.seq();
                        stats.spawned_tasks += 1;
                        in_flight.push_back((id, seq));
                        let mut view = arena.take();
                        view.clone_from(&folded);
                        let mut overlay = overlay;
                        let mut predicted: Vec<Cell> = Vec::new();
                        if config.enable_predictor {
                            let predictions = predictor.predict(start_pc);
                            if !predictions.is_empty() {
                                // Front of the overlay wins layered reads:
                                // confident predictions override the
                                // master's checkpoint and are recorded as
                                // live-ins, hence verified at commit.
                                let mut delta = Delta::new();
                                for &(reg, value) in &predictions {
                                    delta.set(Cell::Reg(reg), value);
                                    predicted.push(Cell::Reg(reg));
                                }
                                overlay.insert(0, Arc::new(delta));
                                stats.predictor_overrides += predictions.len() as u64;
                            }
                        }
                        let mut task = Task::with_buffers(
                            TaskId(id),
                            start_pc,
                            next_worker,
                            overlay,
                            arena.take(),
                            arena.take(),
                        );
                        task.predicted = predicted;
                        outbox[next_worker].push_back(WorkItem {
                            epoch,
                            base: Arc::clone(&base),
                            view,
                            task,
                        });
                        next_worker = (next_worker + 1) % work_txs.len();
                    }
                    CoordMsg::MasterStalled { gen } => {
                        if gen == epoch {
                            master_stalled = true;
                        }
                    }
                    CoordMsg::ThreadDied => return Err(ThreadedError::WorkerDied),
                }
            }
            // Batched dispatch: one ring publish per worker per drain.
            // Short sends (full ring) keep the unsent tasks queued for the
            // next drain instead of blocking here or dropping them; a full
            // ring means that worker already holds a ring-capacity backlog,
            // so its next result is guaranteed to wake this loop for the
            // retry.
            flush_outboxes(&mut outbox, work_txs)?;
        }

        // 2. Verify/commit in order.
        'commit: while let Some(&(oldest_id, task_seq)) = in_flight.front() {
            let Some(pos) = done.iter().position(|&(id, _)| id == oldest_id) else {
                break;
            };
            let (_, result) = done.swap_remove(pos);
            in_flight.pop_front();
            let WorkResult {
                mut task,
                end,
                failed,
                view,
                ..
            } = result;

            // The fast-path verdict: O(write-set) work, same precedence
            // as the oracle (wrong path, then overrun/fault, then the
            // memoization test over exactly the stale/failed cells).
            let verdict = 'verdict: {
                if task.start_pc != virt_pc {
                    break 'verdict VerifyOutcome::Squash(SquashReason::WrongPath);
                }
                let (end_pc, is_halt) = match end {
                    TaskEnd::Overrun => {
                        break 'verdict VerifyOutcome::Squash(SquashReason::Overrun)
                    }
                    TaskEnd::Fault => break 'verdict VerifyOutcome::Squash(SquashReason::Fault),
                    TaskEnd::Boundary(pc) => (pc, false),
                    TaskEnd::Halted(pc) => (pc, true),
                };
                let recheck = match &failed {
                    Some(f) => cells_to_recheck(&task.live_ins, f, &log, task_seq),
                    // No summary shipped (defensive: cannot happen for a
                    // boundary/halt end) — re-check everything.
                    None => task.live_ins.iter_masked().map(|(c, _)| c).collect(),
                };
                stats.live_ins_rechecked += recheck.len() as u64;
                stats.live_ins_skipped +=
                    (task.live_ins.len() as u64).saturating_sub(recheck.len() as u64);
                if recheck.is_empty() {
                    stats.pre_verified_tasks += 1;
                } else {
                    flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
                    for &cell in &recheck {
                        let Some(m) = task.live_ins.get_masked(cell) else {
                            continue; // a failed cell later overwritten? impossible, but harmless
                        };
                        if arch.read_cell(cell) & expand_mask(m.mask) != m.value {
                            break 'verdict VerifyOutcome::Squash(SquashReason::LiveInMismatch);
                        }
                    }
                }
                VerifyOutcome::Commit {
                    end_pc,
                    halted: is_halt,
                }
            };

            // Differential-testing mode: replay the decision through the
            // shared oracle on a clone and demand bit-identical results.
            let oracle = if config.cross_check_commits {
                flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
                let mut shadow = arch.clone();
                let oracle_verdict = verify_and_commit(&mut shadow, &task, end);
                assert_eq!(
                    verdict, oracle_verdict,
                    "threaded fast path diverged from verify_and_commit oracle on task {}",
                    task.id.0
                );
                Some(shadow)
            } else {
                None
            };

            match verdict {
                VerifyOutcome::Commit { end_pc, halted: h } => {
                    stats.committed_tasks += 1;
                    stats.committed_instructions += task.executed;
                    stats.live_in_cells += task.live_ins.len() as u64;
                    stats.live_out_cells += task.writes.len() as u64;
                    let task_id = task.id.0;
                    stats.predictor_hits += task
                        .predicted
                        .iter()
                        .filter(|&&c| task.live_ins.contains(c))
                        .count() as u64;
                    pending_cells += task.writes.len();
                    folded.superimpose_in_place(&task.writes);
                    log.push(std::mem::take(&mut task.writes));
                    arena.put(std::mem::take(&mut task.live_ins));
                    arena.put(view);
                    virt_pc = end_pc;
                    if let Some(shadow) = &oracle {
                        flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
                        assert_eq!(
                            &arch, shadow,
                            "threaded fast path committed state diverged from oracle"
                        );
                    }
                    if ctrl_tx
                        .send(CtrlMsg::Committed {
                            gen: epoch,
                            task_id,
                        })
                        .is_err()
                    {
                        return Err(ThreadedError::WorkerDied);
                    }
                    if log.seq() - base_seq >= MAX_PENDING_DELTAS
                        || pending_cells >= MAX_PENDING_CELLS
                    {
                        flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
                        base = Arc::new(arch.clone());
                        base_seq = log.seq();
                        folded.clear();
                        pending_cells = 0;
                        stats.snapshots_materialized += 1;
                    } else {
                        stats.deltas_published += 1;
                    }
                    if h {
                        halted = true;
                        break 'commit;
                    }
                    if let Some(ad) = adaptive.as_deref_mut() {
                        ad.ctl.observe_commit(task.executed);
                        if let Some((d, tier, latency)) = adaptive_pump(ad) {
                            // Install at this commit boundary: abandon
                            // in-flight speculation exactly like a squash
                            // (epoch bump) — but with no recovery segment,
                            // because architected state already sits at
                            // the task boundary just committed.
                            stats.swap_abandoned_tasks += in_flight.len() as u64;
                            epoch += 1;
                            // why: Relaxed; advisory abandon hint — stale
                            // results are filtered by their message epoch
                            // tag regardless.
                            current_epoch.store(epoch, Ordering::Relaxed);
                            in_flight.clear();
                            for (_, r) in done.drain(..) {
                                recycle_result(&mut arena, r);
                            }
                            master_stalled = false;
                            flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
                            log.clear_window(&mut arena);
                            folded.clear();
                            base = Arc::new(arch.clone());
                            base_seq = log.seq();
                            pending_cells = 0;
                            stats.snapshots_materialized += 1;
                            stats.swaps_installed += 1;
                            match tier {
                                Tier::Fast => stats.recompilations_fast += 1,
                                Tier::Full => stats.recompilations_full += 1,
                            }
                            ad.ctl.note_swap_installed(tier, latency, *stats);
                            let restart = CtrlMsg::Restart {
                                gen: epoch,
                                pc: virt_pc,
                                base: Box::new(arch.clone()),
                                swap: Some(d),
                            };
                            if ctrl_tx.send(restart).is_err() {
                                return Err(ThreadedError::WorkerDied);
                            }
                            break 'commit;
                        }
                    }
                }
                VerifyOutcome::Squash(reason) => {
                    // Squash everything younger and run recovery.
                    flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
                    stats.squashed_tasks += 1 + in_flight.len() as u64;
                    match reason {
                        SquashReason::WrongPath => stats.squashes_wrong_path += 1,
                        SquashReason::LiveInMismatch => stats.squashes_live_in += 1,
                        SquashReason::Overrun => stats.squashes_overrun += 1,
                        SquashReason::Fault => stats.squashes_fault += 1,
                    }
                    let mut squash_regs = Vec::new();
                    if reason == SquashReason::LiveInMismatch {
                        // `arch` is flushed (above), so the mismatch list
                        // carries verified architected truth — the only
                        // values the predictor is allowed to train on.
                        // Register cells only: memory live-in footprints
                        // depend on executor timing, register ones do not.
                        let mismatch_cells = task.live_ins.mismatches_against(&arch);
                        let misses = task
                            .predicted
                            .iter()
                            .filter(|p| mismatch_cells.iter().any(|(c, _, _)| c == *p))
                            .count() as u64;
                        if misses > 0 {
                            stats.squashes_live_in_predicted += 1;
                            stats.predictor_misses += misses;
                        } else {
                            stats.squashes_live_in_stale += 1;
                        }
                        if config.enable_predictor {
                            let start = task.start_pc;
                            for &(cell, _, arch_value) in &mismatch_cells {
                                if let Cell::Reg(r) = cell {
                                    predictor.train(start, r, arch_value);
                                }
                            }
                        }
                        if adaptive.is_some() {
                            squash_regs = mismatch_cells
                                .iter()
                                .filter_map(|&(c, _, _)| match c {
                                    Cell::Reg(r) => Some(r),
                                    _ => None,
                                })
                                .collect();
                        }
                    }
                    if let Some(ad) = adaptive.as_deref_mut() {
                        ad.ctl.observe_squash(reason, virt_pc, &squash_regs);
                    }
                    epoch += 1;
                    // why: Relaxed; advisory squash hint — stale results
                    // are filtered by their message epoch tag regardless.
                    current_epoch.store(epoch, Ordering::Relaxed);
                    in_flight.clear();
                    arena.put(view);
                    arena.put(std::mem::take(&mut task.live_ins));
                    arena.put(std::mem::take(&mut task.writes));
                    for (_, r) in done.drain(..) {
                        recycle_result(&mut arena, r);
                    }
                    master_stalled = false;
                    let recovered = run_recovery(
                        original,
                        boundaries,
                        crossings_per_task,
                        &mut arch,
                        config.max_recovery_instrs,
                        adaptive.as_deref_mut().map(|a| &mut a.ctl),
                    )?;
                    if let Some(ad) = adaptive.as_deref_mut() {
                        ad.ctl.observe_recovery_segment();
                    }
                    stats.recovery_segments += 1;
                    stats.recovery_instructions += recovered.0;
                    stats.committed_instructions += recovered.0;
                    log.clear_window(&mut arena);
                    folded.clear();
                    base = Arc::new(arch.clone());
                    base_seq = log.seq();
                    applied_seq = log.seq();
                    pending_cells = 0;
                    stats.snapshots_materialized += 1;
                    virt_pc = arch.pc();
                    if recovered.1 {
                        halted = true;
                    } else {
                        // The epoch is already bumped and speculation
                        // already abandoned: a pending swap rides the
                        // restart for free.
                        let mut swap = None;
                        if let Some(ad) = adaptive.as_deref_mut() {
                            if let Some((d, tier, latency)) = adaptive_pump(ad) {
                                stats.swaps_installed += 1;
                                match tier {
                                    Tier::Fast => stats.recompilations_fast += 1,
                                    Tier::Full => stats.recompilations_full += 1,
                                }
                                ad.ctl.note_swap_installed(tier, latency, *stats);
                                swap = Some(d);
                            }
                        }
                        let restart = CtrlMsg::Restart {
                            gen: epoch,
                            pc: virt_pc,
                            base: Box::new(arch.clone()),
                            swap,
                        };
                        if ctrl_tx.send(restart).is_err() {
                            return Err(ThreadedError::WorkerDied);
                        }
                    }
                    break 'commit;
                }
            }
        }

        // 3. Master starved (lost/halted with nothing in flight):
        //    sequential recovery, then reseed the master.
        if !halted && in_flight.is_empty() && master_stalled {
            flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
            let recovered = run_recovery(
                original,
                boundaries,
                crossings_per_task,
                &mut arch,
                config.max_recovery_instrs,
                adaptive.as_deref_mut().map(|a| &mut a.ctl),
            )?;
            if let Some(ad) = adaptive.as_deref_mut() {
                ad.ctl.observe_recovery_segment();
            }
            stats.recovery_segments += 1;
            stats.recovery_instructions += recovered.0;
            stats.committed_instructions += recovered.0;
            // Fresh generation: stale spawns/stalls from the old master
            // must not leak into the reseeded run.
            epoch += 1;
            // why: Relaxed; advisory recovery-generation hint — stale
            // spawns/results are filtered by their message epoch tag.
            current_epoch.store(epoch, Ordering::Relaxed);
            master_stalled = false;
            for (_, r) in done.drain(..) {
                recycle_result(&mut arena, r);
            }
            log.clear_window(&mut arena);
            folded.clear();
            base = Arc::new(arch.clone());
            base_seq = log.seq();
            applied_seq = log.seq();
            pending_cells = 0;
            stats.snapshots_materialized += 1;
            virt_pc = arch.pc();
            if recovered.1 {
                halted = true;
            } else {
                let mut swap = None;
                if let Some(ad) = adaptive.as_deref_mut() {
                    if let Some((d, tier, latency)) = adaptive_pump(ad) {
                        stats.swaps_installed += 1;
                        match tier {
                            Tier::Fast => stats.recompilations_fast += 1,
                            Tier::Full => stats.recompilations_full += 1,
                        }
                        ad.ctl.note_swap_installed(tier, latency, *stats);
                        swap = Some(d);
                    }
                }
                let restart = CtrlMsg::Restart {
                    gen: epoch,
                    pc: virt_pc,
                    base: Box::new(arch.clone()),
                    swap,
                };
                if ctrl_tx.send(restart).is_err() {
                    return Err(ThreadedError::WorkerDied);
                }
            }
        }

        // 4. Compact the commit log: keep entries any in-flight task's
        //    conflict check or the unapplied/unfolded suffix could still
        //    reference. `base_seq ≤ applied_seq` always, so the keep
        //    bound also protects the flush suffix.
        let keep = in_flight
            .front()
            .map_or_else(|| log.seq(), |&(_, seq)| seq)
            .min(base_seq);
        log.compact(keep, &mut arena);
    }

    flush_commits(&mut arch, &log, &mut applied_seq, virt_pc);
    Ok(arch)
}

/// Executes one non-speculative segment from the architected PC to the
/// next task end, committing atomically. Returns (instructions, halted).
/// `observer` (the adaptive controller, when enabled) sees every verified
/// instruction — recovery is where a new program phase first shows up.
fn run_recovery(
    original: &Program,
    boundaries: &BoundarySet,
    crossings_per_task: u64,
    arch: &mut MachineState,
    cap: u64,
    mut observer: Option<&mut AdaptiveController>,
) -> Result<(u64, bool), EngineError> {
    let mut writes = mssp_machine::Delta::new();
    let mut pc = arch.pc();
    let mut executed = 0u64;
    let mut crossings = 0u64;
    let halted = loop {
        let info = {
            let mut storage = RecoveryStorage {
                writes: &mut writes,
                arch,
            };
            step(&mut storage, original, pc).map_err(EngineError::RecoveryFault)?
        };
        if let Some(ctl) = observer.as_deref_mut() {
            ctl.observe_recovery_step(&info);
        }
        if info.halted {
            break true;
        }
        executed += 1;
        pc = info.next_pc;
        if executed > cap {
            return Err(EngineError::RecoveryLimit);
        }
        if boundaries.contains(pc) {
            crossings += 1;
            if crossings >= crossings_per_task {
                break false;
            }
        }
    };
    arch.apply(&writes);
    arch.set_pc(pc);
    Ok((executed, halted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveConfig;
    use crate::UnitCost;
    use mssp_analysis::Profile;
    use mssp_distill::{distill, redistill, DistillConfig};
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;
    use mssp_machine::SeqMachine;

    fn fixture() -> (Program, Distilled) {
        let p = assemble(
            "main:  addi s0, zero, 2000
             loop:  add  s1, s1, s0
                    mul  t0, s0, s0
                    add  s1, s1, t0
                    sd   s1, -8(sp)
                    addi s0, s0, -1
                    bnez s0, loop
                    halt",
        )
        .unwrap();
        let profile = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        (p, d)
    }

    fn delta(pairs: &[(Cell, u64)]) -> Delta {
        pairs.iter().copied().collect()
    }

    /// Regression test for the outbox dispatch contract: a short send
    /// (full worker ring) must keep every undispatched task queued in
    /// order, and a later flush must deliver them — nothing dropped,
    /// nothing reordered. (Before `try_send_batch`, the coordinator's
    /// `send_batch(box_.drain(..))` destroyed the queued tasks whenever
    /// the send ended early.)
    #[test]
    fn outbox_flush_survives_full_ring_without_dropping() {
        let (tx_a, mut rx_a) = ring::spsc::<u32>(4);
        let (tx_b, mut rx_b) = ring::spsc::<u32>(4);
        let mut txs = vec![tx_a, tx_b];
        let mut outboxes: Vec<VecDeque<u32>> = vec![(0..7).collect(), (100..103).collect()];

        // First flush: worker A's ring fills at 4, worker B's takes all 3.
        flush_outboxes(&mut outboxes, &mut txs).unwrap();
        assert_eq!(
            outboxes[0].iter().copied().collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert!(outboxes[1].is_empty());

        // A second flush against the still-full ring is a no-op, not a loss.
        flush_outboxes(&mut outboxes, &mut txs).unwrap();
        assert_eq!(outboxes[0].len(), 3);

        // Worker A drains; the next flush delivers the retained tasks.
        let mut got = Vec::new();
        rx_a.recv_batch(&mut got, 100);
        flush_outboxes(&mut outboxes, &mut txs).unwrap();
        assert!(outboxes[0].is_empty());
        rx_a.recv_batch(&mut got, 100);
        assert_eq!(got, (0..7).collect::<Vec<_>>(), "FIFO across short sends");
        let mut got_b = Vec::new();
        rx_b.recv_batch(&mut got_b, 100);
        assert_eq!(got_b, (100..103).collect::<Vec<_>>());
    }

    /// A disconnected worker ring surfaces as `WorkerDied` and leaves the
    /// outbox contents intact for the caller to unwind.
    #[test]
    fn outbox_flush_reports_dead_worker_and_keeps_tasks() {
        let (tx, rx) = ring::spsc::<u32>(4);
        drop(rx);
        let mut txs = vec![tx];
        let mut outboxes: Vec<VecDeque<u32>> = vec![(0..3).collect()];
        assert_eq!(
            flush_outboxes(&mut outboxes, &mut txs),
            Err(ThreadedError::WorkerDied)
        );
        assert_eq!(
            outboxes[0].iter().copied().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn threaded_matches_sequential() {
        let (p, d) = fixture();
        let mut seq = SeqMachine::boot(&p);
        seq.run(u64::MAX).unwrap();
        let run = run_threaded(&p, &d, EngineConfig::default()).unwrap();
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert!(run.stats.committed_instructions > 0);
    }

    #[test]
    fn threaded_matches_discrete_engine() {
        let (p, d) = fixture();
        let reference = crate::Engine::new(&p, &d, EngineConfig::default(), UnitCost)
            .run()
            .unwrap();
        let run = run_threaded(&p, &d, EngineConfig::default()).unwrap();
        assert_eq!(run.state.reg(Reg::S1), reference.state.reg(Reg::S1));
    }

    #[test]
    fn threaded_with_two_workers_repeats_deterministically_in_state() {
        let (p, d) = fixture();
        let cfg = EngineConfig {
            num_slaves: 2,
            ..EngineConfig::default()
        };
        let a = run_threaded(&p, &d, cfg).unwrap();
        let b = run_threaded(&p, &d, cfg).unwrap();
        // Wall-clock and task counts may differ; committed state may not.
        assert_eq!(a.state.reg(Reg::S1), b.state.reg(Reg::S1));
    }

    #[test]
    fn cross_check_mode_agrees_with_oracle_end_to_end() {
        let (p, d) = fixture();
        let cfg = EngineConfig {
            num_slaves: 2,
            cross_check_commits: true,
            ..EngineConfig::default()
        };
        let run = run_threaded(&p, &d, cfg).unwrap();
        let mut seq = SeqMachine::boot(&p);
        seq.run(u64::MAX).unwrap();
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
    }

    #[test]
    fn fast_path_skips_live_ins_and_publishes_deltas() {
        let (p, d) = fixture();
        let run = run_threaded(&p, &d, EngineConfig::default()).unwrap();
        // Live-ins resolved from the unchanging base (e.g. SP) are proven
        // by pre-verification and never re-checked.
        assert!(run.stats.live_ins_skipped > 0, "{:?}", run.stats);
        // Most commits ride the log; snapshots only at thresholds.
        assert!(run.stats.deltas_published > 0, "{:?}", run.stats);
        assert!(
            run.stats.snapshots_materialized < run.stats.committed_tasks,
            "{:?}",
            run.stats
        );
        assert!(run.stats.recheck_ratio() < 1.0, "{:?}", run.stats);
    }

    #[test]
    fn commit_log_is_a_sliding_window_with_monotonic_seq() {
        let mut arena = DeltaArena::new();
        let mut log = CommitLog::new();
        assert_eq!(log.seq(), 0);
        log.push(delta(&[(Cell::Mem(0), 1)]));
        log.push(delta(&[(Cell::Mem(1), 2)]));
        log.push(delta(&[(Cell::Mem(2), 3)]));
        assert_eq!(log.seq(), 3);
        assert_eq!(log.suffix(1).count(), 2);
        log.compact(2, &mut arena);
        assert_eq!(log.seq(), 3); // seq unaffected by compaction
        assert_eq!(log.suffix(2).count(), 1);
        assert_eq!(arena.pooled(), 2, "compacted entries return to the pool");
        log.clear_window(&mut arena);
        assert_eq!(log.seq(), 3);
        assert_eq!(log.suffix(3).count(), 0);
        assert_eq!(arena.pooled(), 3);
    }

    #[test]
    fn stale_preverify_summary_is_rechecked_never_trusted() {
        // A task pre-verified at sequence 0; afterwards a commit wrote
        // one of its live-in cells. The clean summary must not be
        // trusted for that cell.
        let live_ins: Delta = [(Cell::Mem(1), 5), (Cell::Reg(Reg::A0), 2)]
            .into_iter()
            .collect();
        let mut log = CommitLog::new();
        log.push(delta(&[(Cell::Mem(1), 9)])); // conflicting commit, seq 0
        assert_eq!(
            cells_to_recheck(&live_ins, &[], &log, 0),
            vec![Cell::Mem(1)],
            "summary older than a conflicting commit must be re-checked"
        );
        // A summary taken *after* that commit saw it: nothing to re-check.
        assert!(cells_to_recheck(&live_ins, &[], &log, 1).is_empty());
        // Worker-reported failures are re-checked regardless of staleness.
        assert_eq!(
            cells_to_recheck(&live_ins, &[Cell::Reg(Reg::A0)], &log, 1),
            vec![Cell::Reg(Reg::A0)]
        );
        // Both sources merge, sorted and deduplicated.
        let both = cells_to_recheck(&live_ins, &[Cell::Mem(1), Cell::Reg(Reg::A0)], &log, 0);
        assert_eq!(both, vec![Cell::Reg(Reg::A0), Cell::Mem(1)]);
    }

    #[test]
    fn window_pruned_past_task_forces_full_recheck() {
        // Regression: a task spawned at seq 0, then the window is
        // compacted to start = 2 — dropping a seq-1 commit that wrote one
        // of the task's live-ins. The old `saturating_sub` clamped the
        // suffix probe to the window head, found no intersection in the
        // *retained* entries, and trusted a summary that never saw the
        // conflicting commit.
        let live_ins: Delta = [(Cell::Mem(1), 5), (Cell::Reg(Reg::A0), 2)]
            .into_iter()
            .collect();
        let mut arena = DeltaArena::new();
        let mut log = CommitLog::new();
        log.push(delta(&[(Cell::Mem(7), 1)])); // seq 0: disjoint
        log.push(delta(&[(Cell::Mem(1), 9)])); // seq 1: conflicts!
        log.push(delta(&[(Cell::Mem(8), 2)])); // seq 2: disjoint
        log.compact(2, &mut arena); // prune past the in-flight task

        // seq 0 predates the window: every live-in must be re-checked
        // even though the retained suffix intersects none of them.
        assert_eq!(
            cells_to_recheck(&live_ins, &[], &log, 0),
            vec![Cell::Reg(Reg::A0), Cell::Mem(1)],
            "a spawn seq below the window start demands a full re-check"
        );
        // At the window start the precise suffix probe still applies.
        assert!(cells_to_recheck(&live_ins, &[], &log, 2).is_empty());
    }

    #[test]
    fn pre_verify_resolves_view_over_base() {
        let mut base = MachineState::new();
        base.store_word(1, 10);
        base.store_word(2, 20);
        let view: Delta = [(Cell::Mem(2), 22)].into_iter().collect();
        // Live-ins matching view-over-base pass.
        let ok: Delta = [(Cell::Mem(1), 10), (Cell::Mem(2), 22)]
            .into_iter()
            .collect();
        assert!(pre_verify(&ok, Some(&view), &base).is_empty());
        // A live-in holding the *base* value of a view-overridden cell
        // fails: the task could not have read 20 from this view.
        let stale: Delta = [(Cell::Mem(2), 20)].into_iter().collect();
        assert_eq!(pre_verify(&stale, Some(&view), &base), vec![Cell::Mem(2)]);
        assert!(pre_verify(&stale, None, &base).is_empty());
    }

    /// A recompiler for tests: re-runs the pinned-boundary pipeline on
    /// the live profile at the requested tier.
    fn test_recompiler(p: &Program, d: &Distilled) -> Recompiler {
        let program = p.clone();
        let dcfg = DistillConfig::default();
        let boundaries = d.boundaries().clone();
        let crossings = d.crossings_per_task().max(1);
        Box::new(move |profile, tier| {
            redistill(
                &program,
                profile,
                &tier.apply(&dcfg),
                &boundaries,
                crossings,
            )
            .map_err(|e| e.to_string())
        })
    }

    #[test]
    fn adaptive_stationary_run_recompiles_nothing() {
        let (p, d) = fixture();
        let profile = Profile::collect(&p, u64::MAX).unwrap();
        let ctl = AdaptiveController::new(AdaptiveConfig::default(), &d, &profile);
        // A recompiler that must never run: stationary behaviour matching
        // the training profile gives the controller no reason to act.
        let rec: Recompiler = Box::new(|_, _| Err("recompiled a stationary run".into()));
        let run = run_threaded_adaptive(&p, &d, EngineConfig::default(), ctl, rec, true).unwrap();
        let mut seq = SeqMachine::boot(&p);
        seq.run(u64::MAX).unwrap();
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        let report = run.adaptive.expect("adaptive run carries a report");
        assert_eq!(report.recompilations(), 0, "{report:?}");
        assert_eq!(report.recompile_failures, 0, "{report:?}");
        assert_eq!(run.stats.swaps_installed, 0);
    }

    #[test]
    fn adaptive_forced_swap_installs_and_preserves_state() {
        let (p, d) = fixture();
        let profile = Profile::collect(&p, u64::MAX).unwrap();
        let config = AdaptiveConfig {
            force_swap_at: vec![(5, Tier::Fast), (10, Tier::Full)],
            ..AdaptiveConfig::default()
        };
        let ctl = AdaptiveController::new(config, &d, &profile);
        let rec = test_recompiler(&p, &d);
        let run = run_threaded_adaptive(&p, &d, EngineConfig::default(), ctl, rec, true).unwrap();
        let mut seq = SeqMachine::boot(&p);
        seq.run(u64::MAX).unwrap();
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert_eq!(run.stats.swaps_installed, 2, "{:?}", run.stats);
        assert_eq!(run.stats.recompilations_fast, 1);
        assert_eq!(run.stats.recompilations_full, 1);
        let report = run.adaptive.unwrap();
        assert_eq!(report.swaps.len(), 2);
        assert_eq!(report.swaps[0].tier, Tier::Fast);
        assert_eq!(report.swaps[0].at_committed_tasks, 5);
        assert_eq!(report.swaps[1].tier, Tier::Full);
    }

    #[test]
    fn adaptive_async_mode_stays_correct() {
        let (p, d) = fixture();
        let profile = Profile::collect(&p, u64::MAX).unwrap();
        let config = AdaptiveConfig {
            force_swap_at: vec![(5, Tier::Fast)],
            ..AdaptiveConfig::default()
        };
        let ctl = AdaptiveController::new(config, &d, &profile);
        let rec = test_recompiler(&p, &d);
        // Background recompilation: the swap may or may not land before
        // the run halts, but committed state is invariant either way.
        let run = run_threaded_adaptive(&p, &d, EngineConfig::default(), ctl, rec, false).unwrap();
        let mut seq = SeqMachine::boot(&p);
        seq.run(u64::MAX).unwrap();
        assert_eq!(run.state.reg(Reg::S1), seq.state().reg(Reg::S1));
        assert!(run.adaptive.is_some());
    }

    #[test]
    fn worker_panic_surfaces_as_worker_died() {
        let (tx, mut rx) = ring::mpsc::<CoordMsg>(8);
        std::thread::spawn(move || {
            let _guard = DeadManSwitch { tx };
            panic!("worker exploded");
        })
        .join()
        .unwrap_err();
        match rx.recv() {
            Ok(CoordMsg::ThreadDied) => {}
            _ => panic!("expected a ThreadDied obituary"),
        }
    }

    #[test]
    fn threaded_error_formats_and_converts() {
        let e: ThreadedError = EngineError::RecoveryLimit.into();
        assert_eq!(e, ThreadedError::Engine(EngineError::RecoveryLimit));
        assert!(e.to_string().contains("recovery"));
        assert!(ThreadedError::WorkerDied.to_string().contains("worker"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(ThreadedError::WorkerDied.source().is_none());
    }
}
