//! An independent jumping-refinement checker.
//!
//! Given a program and a completed MSSP run (with commit tracing enabled),
//! [`check_refinement`] re-executes the sequential machine and verifies
//! the formal claim end to end:
//!
//! 1. every commit-point PC appears in the sequential PC trace, in order
//!    (the "jumps" of the jumping refinement land only on real sequential
//!    states), and
//! 2. the final architected state equals the sequential final state on
//!    every register and every word of memory either execution touched.
//!
//! The checker is deliberately independent of the engine's internals — it
//! consumes only the public [`MsspRun`] — so it can serve as an oracle
//! when modifying the engine.

use std::fmt;

use mssp_isa::{Program, Reg};
use mssp_machine::SeqMachine;

use crate::MsspRun;

/// A refinement violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefinementError {
    /// The run carried no commit trace (enable it with
    /// [`crate::Engine::enable_commit_trace`]).
    NoTrace,
    /// A commit-point PC was not found in (the remainder of) the
    /// sequential trace.
    CommitOutOfOrder {
        /// Index within the commit trace.
        index: usize,
        /// The offending PC.
        pc: u64,
    },
    /// A register differs between the final states.
    RegisterMismatch {
        /// The register.
        reg: Reg,
        /// MSSP's committed value.
        mssp: u64,
        /// The sequential machine's value.
        seq: u64,
    },
    /// A memory word differs between the final states.
    MemoryMismatch {
        /// Word index (byte address / 8).
        widx: u64,
        /// MSSP's committed value.
        mssp: u64,
        /// The sequential machine's value.
        seq: u64,
    },
    /// The sequential machine faulted (the program itself is broken).
    SeqFault(String),
}

impl fmt::Display for RefinementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefinementError::NoTrace => write!(f, "run has no commit trace"),
            RefinementError::CommitOutOfOrder { index, pc } => {
                write!(f, "commit #{index} at {pc:#x} breaks sequential order")
            }
            RefinementError::RegisterMismatch { reg, mssp, seq } => {
                write!(f, "register {reg}: mssp {mssp:#x} != seq {seq:#x}")
            }
            RefinementError::MemoryMismatch { widx, mssp, seq } => {
                write!(
                    f,
                    "memory word {:#x}: mssp {mssp:#x} != seq {seq:#x}",
                    widx << 3
                )
            }
            RefinementError::SeqFault(e) => write!(f, "sequential machine faulted: {e}"),
        }
    }
}

impl std::error::Error for RefinementError {}

/// Verifies that `run` is a jumping refinement of the sequential execution
/// of `program`. See the [module documentation](self).
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_refinement(program: &Program, run: &MsspRun) -> Result<(), RefinementError> {
    let trace = run
        .commit_trace
        .as_deref()
        .ok_or(RefinementError::NoTrace)?;

    // Build the sequential PC trace and final state.
    let mut seq_pcs = vec![program.entry()];
    let mut machine = SeqMachine::boot(program);
    loop {
        let info = machine
            .step()
            .map_err(|e| RefinementError::SeqFault(e.to_string()))?;
        if info.halted {
            seq_pcs.push(info.pc);
            break;
        }
        seq_pcs.push(info.next_pc);
    }

    // 1. Ordered-subsequence check.
    let mut pos = 0usize;
    for (index, &pc) in trace.iter().enumerate() {
        match seq_pcs[pos..].iter().position(|&s| s == pc) {
            Some(off) => pos += off,
            None => return Err(RefinementError::CommitOutOfOrder { index, pc }),
        }
    }

    // 2. Final-state equality: registers...
    let seq_state = machine.state();
    for reg in Reg::all() {
        let (m, s) = (run.state.reg(reg), seq_state.reg(reg));
        if m != s {
            return Err(RefinementError::RegisterMismatch {
                reg,
                mssp: m,
                seq: s,
            });
        }
    }
    // ...and every memory word either side touched.
    let words: std::collections::BTreeSet<u64> = run
        .state
        .mem()
        .iter_words()
        .map(|(w, _)| w)
        .chain(seq_state.mem().iter_words().map(|(w, _)| w))
        .collect();
    for widx in words {
        let (m, s) = (run.state.load_word(widx), seq_state.load_word(widx));
        if m != s {
            return Err(RefinementError::MemoryMismatch {
                widx,
                mssp: m,
                seq: s,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig, UnitCost};
    use mssp_analysis::Profile;
    use mssp_distill::{distill, DistillConfig};
    use mssp_isa::asm::assemble;

    fn fixture() -> (Program, mssp_distill::Distilled) {
        let p = assemble(
            "main:  addi s0, zero, 150
             loop:  add  s1, s1, s0
                    sd   s1, -8(sp)
                    addi s0, s0, -1
                    bnez s0, loop
                    halt",
        )
        .unwrap();
        let profile = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
        (p, d)
    }

    #[test]
    fn honest_run_passes() {
        let (p, d) = fixture();
        let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
        engine.enable_commit_trace();
        let run = engine.run().unwrap();
        check_refinement(&p, &run).unwrap();
    }

    #[test]
    fn missing_trace_is_reported() {
        let (p, d) = fixture();
        let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
            .run()
            .unwrap();
        assert_eq!(check_refinement(&p, &run), Err(RefinementError::NoTrace));
    }

    #[test]
    fn corrupted_state_is_caught() {
        let (p, d) = fixture();
        let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
        engine.enable_commit_trace();
        let mut run = engine.run().unwrap();
        // Sabotage the final state: the checker must notice.
        let v = run.state.reg(Reg::S1);
        run.state.set_reg(Reg::S1, v ^ 1);
        assert!(matches!(
            check_refinement(&p, &run),
            Err(RefinementError::RegisterMismatch { reg, .. }) if reg == Reg::S1
        ));
    }

    #[test]
    fn corrupted_memory_is_caught() {
        let (p, d) = fixture();
        let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
        engine.enable_commit_trace();
        let mut run = engine.run().unwrap();
        let widx = (mssp_isa::STACK_TOP - 8) >> 3;
        let v = run.state.load_word(widx);
        run.state.store_word(widx, v.wrapping_add(7));
        assert!(matches!(
            check_refinement(&p, &run),
            Err(RefinementError::MemoryMismatch { .. })
        ));
    }

    #[test]
    fn forged_trace_is_caught() {
        let (p, d) = fixture();
        let mut engine = Engine::new(&p, &d, EngineConfig::default(), UnitCost);
        engine.enable_commit_trace();
        let mut run = engine.run().unwrap();
        // Insert a PC that the sequential machine never reaches after the
        // halt (out-of-order by construction).
        if let Some(trace) = &mut run.commit_trace {
            trace.push(p.entry());
        }
        assert!(matches!(
            check_refinement(&p, &run),
            Err(RefinementError::CommitOutOfOrder { .. })
        ));
    }
}
