//! Seeded ordering mutations for the model checker's teeth tests.
//!
//! Only compiled under the `model-check` feature; production builds never
//! see these flags or the branches that read them. Each flag weakens one
//! load-bearing ordering decision in the transport so
//! `crates/check/tests/model_check.rs` can prove the checker actually
//! catches the bug class the original code defends against:
//!
//! | flag | weakens | expected counterexample |
//! |------|---------|-------------------------|
//! | [`DOORBELL_FENCE_ACQREL`] | the doorbell's paired `SeqCst` fences to `AcqRel` | lost wakeup → deadlock |
//! | [`RELAXED_PUBLISH_LOAD`] | the SPSC consumer's `Acquire` load of `head` to `Relaxed` | unsynchronized slot read → data race |
//! | [`EARLY_TAIL_PUBLISH`] | SPSC slot-free ordering: `tail` published *before* the slot is read | producer overwrites a live slot → race / duplicated payload |
//! | [`CHAN_DISCONNECT_BEFORE_DRAIN`] | `chan::Receiver::recv`'s drain-before-disconnect check order | final message lost on disconnect |
//!
//! The flags are plain process-global `std` atomics (not model shims): a
//! mutation is configuration, not a concurrency event, and must not
//! perturb the explored schedule space. Tests that set them must
//! serialize (they are process-global) and reset via [`reset_all`].

use std::sync::atomic::{AtomicBool, Ordering};

/// Weaken both doorbell fences (`prepare_sleep` / `ring`) from `SeqCst`
/// to `AcqRel`, breaking the store→load ordering the lost-wakeup
/// argument needs.
pub static DOORBELL_FENCE_ACQREL: AtomicBool = AtomicBool::new(false);

/// Demote the SPSC consumer's `Acquire` load of the producer's `head`
/// index to `Relaxed`, severing the happens-before edge that makes the
/// slot payload visible.
pub static RELAXED_PUBLISH_LOAD: AtomicBool = AtomicBool::new(false);

/// Publish the SPSC consumer's advanced `tail` *before* reading the slot,
/// freeing it for the producer while the payload is still being taken.
pub static EARLY_TAIL_PUBLISH: AtomicBool = AtomicBool::new(false);

/// Check `senders == 0` before draining the queue in `chan::recv`,
/// resurrecting the lost-final-message bug the drain-first order fixes.
pub static CHAN_DISCONNECT_BEFORE_DRAIN: AtomicBool = AtomicBool::new(false);

/// True if `flag` is armed. `Relaxed` is fine: tests arm flags before
/// spawning the model execution and reset after it joins.
pub(crate) fn armed(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

/// Disarm every mutation (test cleanup).
pub fn reset_all() {
    for flag in [
        &DOORBELL_FENCE_ACQREL,
        &RELAXED_PUBLISH_LOAD,
        &EARLY_TAIL_PUBLISH,
        &CHAN_DISCONNECT_BEFORE_DRAIN,
    ] {
        flag.store(false, Ordering::Relaxed);
    }
}
