//! The MSSP engine: orchestrates master, slaves, and the verify/commit
//! unit.
//!
//! The engine is a deterministic discrete-time simulation. Components act
//! in a fixed priority order (recovery, verify unit, slaves, master) and
//! the cost model prices each event; under [`crate::UnitCost`] this
//! degenerates to a functional interleaving whose committed state — like
//! that of *any* cost model — equals the sequential machine's (the jumping
//! refinement of the formal model).
//!
//! ## Protocol summary
//!
//! * The **master** executes the distilled program; when it crosses a task
//!   boundary it spawns a task (start PC + predicted-write overlay) onto a
//!   free slave, stalling if none is free.
//! * **Slaves** execute original-program tasks against layered storage,
//!   recording live-ins, until they reach any boundary PC, `halt`, a
//!   fault, or the instruction cap.
//! * The **verify unit** processes tasks strictly in spawn order. The
//!   oldest task commits iff its start PC equals the architected PC and
//!   every recorded live-in matches architected state; its writes are then
//!   superimposed atomically. Any failure squashes the failed task, all
//!   younger tasks, and the master.
//! * **Recovery** re-executes the failed segment non-speculatively from
//!   architected state (buffered, committed atomically at the next
//!   boundary) while the master restarts in parallel from the same point —
//!   guaranteeing forward progress no matter how wrong the master is.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use mssp_distill::{Distilled, Tier};
use mssp_isa::{Program, Reg};
use mssp_machine::{step, Cell, Delta, Fault, MachineState};

use crate::adaptive::{AdaptiveController, AdaptiveReport, Recompiler};
use crate::master::{Master, MasterStall};
use crate::predictor::{Predictor, PredictorReport};
use crate::task::{BoundarySet, RecoveryStorage, Task, TaskEnd, TaskId, TaskStatus};
use crate::{CoreRole, CostModel};

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of slave processors (the paper's CMP had one master plus
    /// slaves; 8 cores total is the reference configuration).
    pub num_slaves: usize,
    /// Hard cap on a task's instruction count; exceeding it marks the
    /// task overrun (squashed at verification).
    pub max_task_instrs: u64,
    /// Master instructions allowed without crossing a boundary before the
    /// master is declared lost (bounds run-away distilled loops).
    pub master_runahead: u64,
    /// Simulated-cycle budget; exceeding it aborts the run.
    pub max_cycles: u64,
    /// Instruction cap for a single recovery segment (a backstop against
    /// boundary-free infinite loops; the sequential program would not
    /// terminate either).
    pub max_recovery_instrs: u64,
    /// Ablation switch: degrade live-in tracking to whole-word granularity
    /// (recreates false sharing between tasks writing adjacent bytes).
    pub word_granular_live_ins: bool,
    /// Adaptive sequential fallback (the paper's dual-mode operation): if
    /// more than this many squash events occur within
    /// [`EngineConfig::throttle_window`] committed+squashed tasks, the
    /// master is kept offline for [`EngineConfig::throttle_duration`]
    /// recovery segments. `0` disables throttling.
    pub throttle_threshold: u32,
    /// Task window over which squashes are counted for throttling.
    pub throttle_window: u64,
    /// Recovery segments to run sequentially once throttled.
    pub throttle_duration: u64,
    /// Differential-testing aid for the threaded executor: cross-check
    /// every fast-path verify/commit decision against the
    /// [`verify_and_commit`] oracle on a cloned architected state and
    /// panic on any divergence (verdict or committed state). Expensive —
    /// it re-clones architected state per task — and therefore off by
    /// default; the discrete [`Engine`] ignores it (it *is* the oracle).
    pub cross_check_commits: bool,
    /// Live-in value prediction: when a per-(boundary, register) component
    /// predictor is confident, its value is injected into the spawned
    /// task's overlay, overriding the master's checkpoint for that cell.
    /// Injected values are read as live-ins and verified at commit, so a
    /// wrong prediction costs a squash, never correctness. The predictor
    /// trains only on architected values observed at verify time.
    pub enable_predictor: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            num_slaves: 7,
            max_task_instrs: 1 << 14,
            master_runahead: 1 << 17,
            max_cycles: u64::MAX / 2,
            max_recovery_instrs: u64::MAX / 2,
            word_granular_live_ins: false,
            throttle_threshold: 0,
            throttle_window: 64,
            throttle_duration: 16,
            cross_check_commits: false,
            enable_predictor: true,
        }
    }
}

/// Why a squash happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashReason {
    /// The oldest task's start PC did not match the architected PC (the
    /// master predicted the wrong next task).
    WrongPath,
    /// A recorded live-in disagreed with architected state.
    LiveInMismatch,
    /// The task exceeded its instruction cap.
    Overrun,
    /// The task faulted (illegal PC).
    Fault,
}

/// The outcome of presenting the oldest finished task to the verify
/// unit — see [`verify_and_commit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The task passed the memoization test: its writes were superimposed
    /// onto architected state and the PC advanced to `end_pc`.
    Commit {
        /// PC the architected state advanced to (the task's end PC).
        end_pc: u64,
        /// Whether the committed task executed `halt`.
        halted: bool,
    },
    /// The task failed verification; architected state is untouched.
    Squash(SquashReason),
}

/// The paper's verify/commit step, shared by the discrete-time [`Engine`]
/// and the threaded executor so the two stay behaviorally identical.
///
/// The oldest task commits iff it started at the architected PC, ended at
/// a boundary or `halt`, and every recorded live-in matches architected
/// state (the memoization test). On success the task's writes are applied
/// as one superimposition and the PC advances; on any failure `arch` is
/// left untouched and the caller must squash all younger tasks and run
/// recovery.
pub fn verify_and_commit(arch: &mut MachineState, task: &Task, end: TaskEnd) -> VerifyOutcome {
    if task.start_pc != arch.pc() {
        return VerifyOutcome::Squash(SquashReason::WrongPath);
    }
    match end {
        TaskEnd::Overrun => VerifyOutcome::Squash(SquashReason::Overrun),
        TaskEnd::Fault => VerifyOutcome::Squash(SquashReason::Fault),
        TaskEnd::Boundary(end_pc) | TaskEnd::Halted(end_pc) => {
            // Squash diagnostics need only one offending cell; the
            // iterator-based first-mismatch probe short-circuits without
            // allocating the full mismatch report (callers that want the
            // whole set — `Engine::enable_mismatch_samples` — still use
            // `mismatches_against`).
            if task.live_ins.first_mismatch_against(arch).is_some() {
                return VerifyOutcome::Squash(SquashReason::LiveInMismatch);
            }
            arch.apply(&task.writes);
            arch.set_pc(end_pc);
            VerifyOutcome::Commit {
                end_pc,
                halted: matches!(end, TaskEnd::Halted(_)),
            }
        }
    }
}

/// Aggregate statistics of one MSSP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tasks spawned by the master.
    pub spawned_tasks: u64,
    /// Tasks that verified and committed.
    pub committed_tasks: u64,
    /// Instructions committed via tasks or recovery segments (equals the
    /// sequential instruction count of the program).
    pub committed_instructions: u64,
    /// Tasks squashed (all reasons).
    pub squashed_tasks: u64,
    /// Squash events caused by wrong-path task starts.
    pub squashes_wrong_path: u64,
    /// Squash events caused by live-in mismatches.
    pub squashes_live_in: u64,
    /// Of which events where a predictor-injected cell was among the
    /// mismatches (the predictor guessed wrong).
    pub squashes_live_in_predicted: u64,
    /// Of which events with no predictor involvement (the master's
    /// checkpoint was stale on its own).
    pub squashes_live_in_stale: u64,
    /// Squash events caused by task overruns.
    pub squashes_overrun: u64,
    /// Squash events caused by task faults.
    pub squashes_fault: u64,
    /// Non-speculative recovery segments executed.
    pub recovery_segments: u64,
    /// Instructions executed in recovery segments.
    pub recovery_instructions: u64,
    /// Distilled instructions executed by the master.
    pub master_instructions: u64,
    /// Original-program instructions executed speculatively by slaves.
    pub slave_instructions: u64,
    /// Speculative slave instructions discarded by squashes.
    pub wasted_slave_instructions: u64,
    /// Sum over committed tasks of live-in cells (bandwidth proxy).
    pub live_in_cells: u64,
    /// Of which register cells.
    pub live_in_reg_cells: u64,
    /// Of which memory cells.
    pub live_in_mem_cells: u64,
    /// Sum over committed tasks of live-out cells.
    pub live_out_cells: u64,
    /// Largest committed live-in set.
    pub max_live_in_cells: u64,
    /// Cycles the master spent executing or spawning.
    pub master_busy_cycles: u64,
    /// Cycles slaves spent executing task instructions.
    pub slave_busy_cycles: u64,
    /// Cycles spent in recovery execution.
    pub recovery_busy_cycles: u64,
    /// Cycles the verify unit spent verifying and committing.
    pub verify_busy_cycles: u64,
    /// Times the adaptive throttle took the master offline.
    pub throttle_events: u64,
    /// Tasks committed entirely on worker pre-verification — the
    /// coordinator re-checked **zero** live-ins against architected state
    /// (threaded executor fast path).
    pub pre_verified_tasks: u64,
    /// Live-in cells the verify unit re-checked against architected
    /// state. The discrete engine re-checks every recorded live-in; the
    /// threaded fast path re-checks only pre-verification failures and
    /// cells dirtied by commits after the task's spawn snapshot.
    pub live_ins_rechecked: u64,
    /// Live-in cells the verify unit skipped because worker-side
    /// pre-verification already proved them (threaded executor only).
    pub live_ins_skipped: u64,
    /// Full architected-state snapshots materialized for publication
    /// (threaded executor; squashes and chain-threshold crossings).
    pub snapshots_materialized: u64,
    /// Commits published to workers as an incremental write delta on the
    /// commit log instead of a fresh snapshot (threaded executor).
    pub deltas_published: u64,
    /// Live-in cells whose checkpoint value was overridden by the value
    /// predictor at spawn.
    pub predictor_overrides: u64,
    /// Predictor-injected cells that a committed task actually read (the
    /// prediction survived verification).
    pub predictor_hits: u64,
    /// Predictor-injected cells found among the mismatches of a live-in
    /// squash (the prediction was wrong).
    pub predictor_misses: u64,
    /// Spawns the master suppressed because a spawn-guard slice resolved
    /// an asserted branch against its assertion inside the task window
    /// (each veto hands the window to a sequential recovery segment).
    pub spawn_vetoes: u64,
    /// Fast-tier (DCE-only) adaptive recompilations that produced a
    /// valid, installed candidate.
    pub recompilations_fast: u64,
    /// Full-pipeline adaptive recompilations that produced a valid,
    /// installed candidate.
    pub recompilations_full: u64,
    /// Distilled-program hot-swaps installed at task boundaries.
    pub swaps_installed: u64,
    /// In-flight tasks abandoned by hot-swaps (counted separately from
    /// squashes: a swap is not a misprediction, and the squash-rate
    /// gates must not see it as one).
    pub swap_abandoned_tasks: u64,
}

impl EngineStats {
    /// Fraction of speculative slave work that was wasted.
    #[must_use]
    pub fn waste_fraction(&self) -> f64 {
        if self.slave_instructions == 0 {
            0.0
        } else {
            self.wasted_slave_instructions as f64 / self.slave_instructions as f64
        }
    }

    /// Fraction of verified predictor injections that turned out correct
    /// (`hits / (hits + misses)`); `0.0` when nothing was ever verified.
    /// Never NaN, for the same gate-comparison reason as
    /// [`EngineStats::recheck_ratio`].
    #[must_use]
    pub fn predictor_accuracy(&self) -> f64 {
        let verified = self.predictor_hits + self.predictor_misses;
        if verified == 0 {
            0.0
        } else {
            self.predictor_hits as f64 / verified as f64
        }
    }

    /// Total squash events.
    #[must_use]
    pub fn squash_events(&self) -> u64 {
        self.squashes_wrong_path
            + self.squashes_live_in
            + self.squashes_overrun
            + self.squashes_fault
    }

    /// Fraction of committed instructions that came from (sequential)
    /// recovery segments rather than parallel tasks.
    #[must_use]
    pub fn recovery_fraction(&self) -> f64 {
        if self.committed_instructions == 0 {
            0.0
        } else {
            self.recovery_instructions as f64 / self.committed_instructions as f64
        }
    }

    /// Verify-unit occupancy: the fraction of presented live-in cells the
    /// coordinator actually re-checked against architected state
    /// (re-checked / (re-checked + skipped)). `1.0` for the discrete
    /// engine, which re-checks everything; the threaded fast path drives
    /// this down toward the true cross-task conflict rate.
    ///
    /// A run that presented no live-ins at all (zero committed tasks, or
    /// squash-only runs where every task died before verification)
    /// reports `0.0`: no re-check work happened. This must never be NaN —
    /// the benchmark gates compare it with `<=`, and NaN would make a
    /// `--max-recheck-ratio` gate silently pass or fail on IEEE
    /// comparison semantics rather than on the measurement.
    #[must_use]
    pub fn recheck_ratio(&self) -> f64 {
        let presented = self.live_ins_rechecked + self.live_ins_skipped;
        if presented == 0 {
            0.0
        } else {
            self.live_ins_rechecked as f64 / presented as f64
        }
    }
}

/// Result of a completed MSSP run.
#[derive(Debug, Clone)]
pub struct MsspRun {
    /// Simulated cycles from boot to architectural halt.
    pub cycles: u64,
    /// The final architected state.
    pub state: MachineState,
    /// Run statistics.
    pub stats: EngineStats,
    /// Architected PCs at each commit point, if tracing was enabled with
    /// [`Engine::enable_commit_trace`]. The jumping-refinement property:
    /// this is always a subsequence of the sequential machine's PC trace.
    pub commit_trace: Option<Vec<u64>>,
    /// Live-in mismatch samples, if enabled with
    /// [`Engine::enable_mismatch_samples`].
    pub mismatch_samples: Option<Vec<MismatchSample>>,
    /// All-cause squash samples, if enabled with
    /// [`Engine::enable_squash_samples`].
    pub squash_samples: Option<Vec<SquashSample>>,
    /// Committed task sizes, if enabled with
    /// [`Engine::enable_task_size_trace`].
    pub task_sizes: Option<Vec<u64>>,
    /// Final accuracy summary of the live-in value predictor (all zeros
    /// when the predictor was disabled or never trained).
    pub predictor_report: PredictorReport,
    /// Adaptive re-distillation summary, if enabled with
    /// [`Engine::enable_adaptive`].
    pub adaptive: Option<AdaptiveReport>,
}

/// Engine failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// Exceeded [`EngineConfig::max_cycles`].
    CycleLimit,
    /// The *original* program faulted during non-speculative recovery —
    /// a genuine program error, not a speculation artifact.
    RecoveryFault(Fault),
    /// A recovery segment exceeded [`EngineConfig::max_recovery_instrs`].
    RecoveryLimit,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::CycleLimit => write!(f, "simulated cycle budget exceeded"),
            EngineError::RecoveryFault(fault) => {
                write!(f, "original program faulted in recovery: {fault}")
            }
            EngineError::RecoveryLimit => write!(f, "recovery segment exceeded instruction cap"),
        }
    }
}

impl std::error::Error for EngineError {}

#[derive(Debug)]
struct SlaveCtx {
    busy_until: u64,
    task: Option<TaskId>,
}

/// The adaptive loop's engine-side state: the controller plus the
/// injected recompiler. Split out so the boxed closure (not `Debug`) can
/// hide behind a manual impl.
struct AdaptiveHook {
    ctl: AdaptiveController,
    recompiler: Recompiler,
}

impl std::fmt::Debug for AdaptiveHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveHook")
            .field("ctl", &self.ctl)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct Recovery {
    pc: u64,
    writes: Delta,
    executed: u64,
    crossings: u64,
    busy_until: u64,
}

/// The MSSP machine.
///
/// # Examples
///
/// ```
/// use mssp_isa::asm::assemble;
/// use mssp_analysis::Profile;
/// use mssp_distill::{distill, DistillConfig};
/// use mssp_core::{Engine, EngineConfig, UnitCost};
/// use mssp_machine::SeqMachine;
///
/// let p = assemble(
///     "main: addi s0, zero, 200
///      loop: add  s1, s1, s0
///            addi s0, s0, -1
///            bnez s0, loop
///            halt",
/// ).unwrap();
/// let profile = Profile::collect(&p, Profile::UNBOUNDED).unwrap();
/// let d = distill(&p, &profile, &DistillConfig::default()).unwrap();
///
/// let run = Engine::new(&p, &d, EngineConfig::default(), UnitCost)
///     .run()
///     .unwrap();
///
/// // MSSP's committed state equals the sequential machine's.
/// let mut seq = SeqMachine::boot(&p);
/// seq.run(u64::MAX).unwrap();
/// assert_eq!(run.state.reg(mssp_isa::Reg::S1), seq.state().reg(mssp_isa::Reg::S1));
/// ```
#[derive(Debug)]
pub struct Engine<'a, C> {
    original: &'a Program,
    distilled: &'a Distilled,
    boundaries: BoundarySet,
    crossings_per_task: u64,
    config: EngineConfig,
    cost: C,

    now: u64,
    arch: MachineState,
    arch_halted: bool,

    master: Master,
    master_busy_until: u64,
    master_since_spawn: u64,
    last_spawned: Option<u64>,
    /// Live-in value predictor (see [`Predictor`]); trained only on
    /// architected values at verify time.
    predictor: Predictor,

    tasks: VecDeque<Task>,
    slaves: Vec<SlaveCtx>,
    recovery: Option<Recovery>,
    verify_busy_until: u64,

    next_task_id: u64,
    /// Recent squash history (event counter within the sliding window).
    recent_squashes: VecDeque<u64>,
    /// Tasks processed (committed or squashed), the throttle's clock.
    tasks_processed: u64,
    /// Remaining recovery segments to run with the master offline.
    throttle_remaining: u64,
    stats: EngineStats,
    /// Architected PCs at each commit point, recorded when tracing is on.
    commit_trace: Option<Vec<u64>>,
    /// Live-in mismatch samples, recorded when diagnostics are on.
    mismatch_samples: Option<Vec<MismatchSample>>,
    /// All-cause squash samples, recorded when diagnostics are on.
    squash_samples: Option<Vec<SquashSample>>,
    /// Committed task sizes (instructions), recorded when enabled.
    task_sizes: Option<Vec<u64>>,
    /// Adaptive re-distillation state, when enabled.
    adaptive: Option<AdaptiveHook>,
    /// The currently hot-swapped distilled program; `None` means the
    /// offline program the engine was built with is still installed.
    swapped: Option<Arc<Distilled>>,
}

/// A recorded live-in verification failure (diagnostics).
#[derive(Debug, Clone)]
pub struct MismatchSample {
    /// The failing task's start PC (original space).
    pub start_pc: u64,
    /// Instructions the task had executed.
    pub executed: u64,
    /// Mismatching cells: `(cell, predicted, architected)`.
    pub cells: Vec<(mssp_machine::Cell, u64, u64)>,
}

/// A recorded squash event of any cause (diagnostics): what the verify
/// unit saw when it killed the task window. Richer than
/// [`MismatchSample`] — wrong-path events carry the architected PC the
/// master failed to predict, which is what the next-task predictor
/// trains on.
#[derive(Debug, Clone)]
pub struct SquashSample {
    /// Why the squash happened.
    pub reason: SquashReason,
    /// The failing task's start PC (original space).
    pub task_start_pc: u64,
    /// The architected PC at squash time (where execution really was).
    pub arch_pc: u64,
    /// Instructions the failing task had executed.
    pub executed: u64,
    /// Mismatching live-in cells `(cell, predicted, architected)`;
    /// non-empty only for [`SquashReason::LiveInMismatch`].
    pub cells: Vec<(mssp_machine::Cell, u64, u64)>,
}

impl<'a, C: CostModel> Engine<'a, C> {
    /// Creates an engine booted at the original program's entry.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_slaves` is zero.
    #[must_use]
    pub fn new(
        original: &'a Program,
        distilled: &'a Distilled,
        config: EngineConfig,
        cost: C,
    ) -> Engine<'a, C> {
        assert!(config.num_slaves > 0, "MSSP needs at least one slave");
        let arch = MachineState::boot(original);
        let master = Master::restart_at(distilled, arch.pc(), true, arch.clone());
        Engine {
            original,
            distilled,
            boundaries: BoundarySet::new(distilled.boundaries().clone()),
            crossings_per_task: distilled.crossings_per_task().max(1),
            config,
            cost,
            now: 0,
            arch,
            arch_halted: false,
            master,
            master_busy_until: 0,
            master_since_spawn: 0,
            last_spawned: None,
            predictor: Predictor::new(),
            tasks: VecDeque::new(),
            slaves: (0..config.num_slaves)
                .map(|_| SlaveCtx {
                    busy_until: 0,
                    task: None,
                })
                .collect(),
            recovery: None,
            verify_busy_until: 0,
            next_task_id: 0,
            recent_squashes: VecDeque::new(),
            tasks_processed: 0,
            throttle_remaining: 0,
            stats: EngineStats::default(),
            commit_trace: None,
            mismatch_samples: None,
            squash_samples: None,
            task_sizes: None,
            adaptive: None,
            swapped: None,
        }
    }

    /// Enables online adaptive re-distillation: `controller` detects
    /// divergence and paces the tier state machine, `recompiler`
    /// produces candidate programs from the live profile (callers wire
    /// it to `mssp-lint`'s `redistill_validated`, so every candidate
    /// passes the soundness gate). The discrete engine recompiles
    /// synchronously at the requesting task boundary — deterministically,
    /// for differential testing against the threaded executor.
    pub fn enable_adaptive(&mut self, controller: AdaptiveController, recompiler: Recompiler) {
        self.adaptive = Some(AdaptiveHook {
            ctl: controller,
            recompiler,
        });
    }

    /// The distilled program the master is currently running (the latest
    /// hot-swap, or the offline program).
    #[must_use]
    pub fn current_distilled(&self) -> &Distilled {
        self.swapped.as_deref().unwrap_or(self.distilled)
    }

    /// Enables recording of every committed task's instruction count (for
    /// task-size distribution studies).
    pub fn enable_task_size_trace(&mut self) {
        self.task_sizes = Some(Vec::new());
    }

    /// Enables recording of live-in mismatch samples (first `cap` squash
    /// events), for distillation diagnostics.
    pub fn enable_mismatch_samples(&mut self, cap: usize) {
        self.mismatch_samples = Some(Vec::with_capacity(cap.min(1024)));
    }

    /// Enables recording of all-cause squash samples (first `cap` squash
    /// events), for squash-attribution diagnostics.
    pub fn enable_squash_samples(&mut self, cap: usize) {
        self.squash_samples = Some(Vec::with_capacity(cap.min(1024)));
    }

    /// Enables recording of the architected PC at every commit point.
    /// Used by the jumping-refinement tests: the recorded sequence must be
    /// a subsequence of the sequential machine's PC trace.
    pub fn enable_commit_trace(&mut self) {
        self.commit_trace = Some(vec![self.arch.pc()]);
    }

    /// The recorded commit trace, if enabled.
    #[must_use]
    pub fn commit_trace(&self) -> Option<&[u64]> {
        self.commit_trace.as_deref()
    }

    /// The recorded mismatch samples, if enabled (drain before `run`
    /// consumes the engine via [`MsspRun::mismatch_samples`]).
    #[must_use]
    pub fn mismatch_samples(&self) -> Option<&[MismatchSample]> {
        self.mismatch_samples.as_deref()
    }

    /// Runs the machine to architectural halt.
    ///
    /// # Errors
    ///
    /// See [`EngineError`].
    pub fn run(self) -> Result<MsspRun, EngineError> {
        self.run_returning_cost().map(|(run, _)| run)
    }

    /// Like [`Engine::run`], additionally returning the cost model so
    /// callers can read the microarchitectural counters it accumulated.
    ///
    /// # Errors
    ///
    /// See [`EngineError`].
    pub fn run_returning_cost(mut self) -> Result<(MsspRun, C), EngineError> {
        while !self.arch_halted {
            if self.now > self.config.max_cycles {
                return Err(EngineError::CycleLimit);
            }
            let mut acted = false;
            acted |= self.act_recovery()?;
            if !self.arch_halted {
                acted |= self.act_verify();
            }
            if !self.arch_halted {
                for s in 0..self.slaves.len() {
                    acted |= self.act_slave(s);
                }
                acted |= self.act_master();
            }
            if !acted && !self.arch_halted {
                self.advance_time();
            }
        }
        self.stats.spawn_vetoes += self.master.take_vetoed_spawns();
        Ok((
            MsspRun {
                cycles: self.now,
                state: self.arch,
                stats: self.stats,
                commit_trace: self.commit_trace,
                mismatch_samples: self.mismatch_samples,
                squash_samples: self.squash_samples,
                task_sizes: self.task_sizes,
                predictor_report: self.predictor.report(),
                adaptive: self.adaptive.map(|h| h.ctl.into_report()),
            },
            self.cost,
        ))
    }

    // ---- components -----------------------------------------------------

    fn act_recovery(&mut self) -> Result<bool, EngineError> {
        let Some(rec) = &mut self.recovery else {
            return Ok(false);
        };
        if self.now < rec.busy_until {
            return Ok(false);
        }
        let pc = rec.pc;
        let mut storage = RecoveryStorage {
            writes: &mut rec.writes,
            arch: &self.arch,
        };
        let info = step(&mut storage, self.original, pc).map_err(EngineError::RecoveryFault)?;
        if let Some(ad) = &mut self.adaptive {
            // Recovery is verified, non-speculative execution: feed the
            // live profile and the cold-code divergence signal.
            ad.ctl.observe_recovery_step(&info);
        }
        let cost = self.cost.instr_cost(CoreRole::Recovery(0), &info).max(1);
        rec.busy_until = self.now + cost;
        self.stats.recovery_busy_cycles += cost;
        if info.halted {
            self.finish_recovery(pc, true);
            return Ok(true);
        }
        rec.executed += 1;
        rec.pc = info.next_pc;
        if rec.executed > self.config.max_recovery_instrs {
            return Err(EngineError::RecoveryLimit);
        }
        if self.boundaries.contains(info.next_pc) {
            rec.crossings += 1;
            if rec.crossings >= self.crossings_per_task {
                self.finish_recovery(info.next_pc, false);
            }
        }
        Ok(true)
    }

    fn finish_recovery(&mut self, end_pc: u64, halted: bool) {
        let rec = self.recovery.take().expect("recovery active");
        self.arch.apply(&rec.writes);
        self.arch.set_pc(end_pc);
        self.stats.recovery_instructions += rec.executed;
        self.stats.committed_instructions += rec.executed;
        if let Some(trace) = &mut self.commit_trace {
            trace.push(end_pc);
        }
        if let Some(ad) = &mut self.adaptive {
            ad.ctl.observe_recovery_segment();
        }
        if halted {
            self.arch_halted = true;
            return;
        }
        // While throttled, keep the master offline and let starvation
        // recovery carry execution sequentially.
        if self.throttle_remaining > 0 {
            self.throttle_remaining -= 1;
            return;
        }
        // Restart the master here, at a *consistent* architected point.
        // (Restarting it at squash time, concurrently with recovery, lets
        // the master lazily read a torn mixture of pre- and post-recovery
        // architected values and desynchronize by one segment on every
        // squash.)
        if self.master.status() != MasterStall::Active {
            self.stats.spawn_vetoes += self.master.take_vetoed_spawns();
            let cur = self.swapped.as_deref().unwrap_or(self.distilled);
            self.master = Master::restart_at(cur, end_pc, true, self.arch.clone());
            self.master_busy_until = self.now;
            self.master_since_spawn = 0;
            self.last_spawned = None;
        }
        // A recovery end is a consistent task boundary — the discrete
        // engine's second swap point (alongside commits).
        self.try_adaptive_swap();
    }

    fn act_verify(&mut self) -> bool {
        if self.recovery.is_some() || self.now < self.verify_busy_until {
            return false;
        }
        let Some(task) = self.tasks.front() else {
            return false;
        };
        // Wrong-path detection does not wait for the task to finish.
        if task.start_pc != self.arch.pc() {
            if let Some(ad) = &mut self.adaptive {
                ad.ctl
                    .observe_squash(SquashReason::WrongPath, self.arch.pc(), &[]);
            }
            self.record_squash_sample(SquashReason::WrongPath, Vec::new());
            self.squash_and_recover(SquashReason::WrongPath);
            return true;
        }
        let TaskStatus::Done { end, done_at } = task.status else {
            return false;
        };
        if self.now < done_at {
            return false;
        }
        match verify_and_commit(&mut self.arch, task, end) {
            VerifyOutcome::Squash(reason) => {
                let mut mismatch_cells: Vec<(mssp_machine::Cell, u64, u64)> = Vec::new();
                if reason == SquashReason::LiveInMismatch {
                    let want_cells = self.mismatch_samples.is_some()
                        || self.squash_samples.is_some()
                        || self.config.enable_predictor
                        || self.adaptive.is_some();
                    if want_cells {
                        mismatch_cells = task.live_ins.mismatches_against(&self.arch);
                    }
                    if let Some(samples) = &mut self.mismatch_samples {
                        if samples.len() < samples.capacity() {
                            samples.push(MismatchSample {
                                start_pc: task.start_pc,
                                executed: task.executed,
                                cells: mismatch_cells.clone(),
                            });
                        }
                    }
                    // Attribute the event: did a predictor injection
                    // participate in the failure, or was the master's
                    // checkpoint stale on its own?
                    let misses = task
                        .predicted
                        .iter()
                        .filter(|p| mismatch_cells.iter().any(|(c, _, _)| c == *p))
                        .count() as u64;
                    if misses > 0 {
                        self.stats.squashes_live_in_predicted += 1;
                        self.stats.predictor_misses += misses;
                    } else {
                        self.stats.squashes_live_in_stale += 1;
                    }
                    if self.config.enable_predictor {
                        // Train-on-verified-only: the architected side of
                        // each mismatch is committed truth. Register cells
                        // only — memory live-in footprints depend on
                        // executor timing, register live-ins do not.
                        let start = task.start_pc;
                        for &(cell, _, arch_value) in &mismatch_cells {
                            if let Cell::Reg(r) = cell {
                                self.predictor.train(start, r, arch_value);
                            }
                        }
                    }
                }
                if let Some(ad) = &mut self.adaptive {
                    let regs: Vec<Reg> = mismatch_cells
                        .iter()
                        .filter_map(|&(c, _, _)| match c {
                            Cell::Reg(r) => Some(r),
                            _ => None,
                        })
                        .collect();
                    ad.ctl.observe_squash(reason, self.arch.pc(), &regs);
                }
                self.record_squash_sample(reason, mismatch_cells);
                self.squash_and_recover(reason);
                true
            }
            VerifyOutcome::Commit { end_pc, halted } => {
                // Task safety established: the commit superimposition has
                // been applied; account for it.
                let task = self.tasks.pop_front().expect("front exists");
                let vcost = self.cost.verify_cost(task.live_ins.len());
                let ccost = self.cost.commit_cost(task.writes.len());
                self.verify_busy_until = self.now + vcost + ccost;
                self.stats.verify_busy_cycles += vcost + ccost;
                self.stats.committed_tasks += 1;
                self.tasks_processed += 1;
                self.stats.committed_instructions += task.executed;
                if let Some(sizes) = &mut self.task_sizes {
                    sizes.push(task.executed);
                }
                self.stats.live_in_cells += task.live_ins.len() as u64;
                // The discrete verify unit re-checks every recorded
                // live-in (no worker-side pre-verification here).
                self.stats.live_ins_rechecked += task.live_ins.len() as u64;
                self.stats.live_in_reg_cells += task.live_ins.reg_cells() as u64;
                self.stats.live_in_mem_cells += task.live_ins.mem_cells() as u64;
                self.stats.live_out_cells += task.writes.len() as u64;
                self.stats.max_live_in_cells =
                    self.stats.max_live_in_cells.max(task.live_ins.len() as u64);
                // A predicted cell the committed task actually read is a
                // verified hit (live-ins all matched, or we wouldn't be
                // here); injections the task never read are unverified
                // and count as neither hit nor miss.
                self.stats.predictor_hits += task
                    .predicted
                    .iter()
                    .filter(|&&c| task.live_ins.contains(c))
                    .count() as u64;
                self.master.on_commit(task.id.0);
                self.slaves[task.slave].task = None;
                if let Some(trace) = &mut self.commit_trace {
                    trace.push(end_pc);
                }
                if let Some(ad) = &mut self.adaptive {
                    ad.ctl.observe_commit(task.executed);
                }
                if halted {
                    self.arch_halted = true;
                } else {
                    // Commits are the primary swap point: architected
                    // state sits at a consistent task boundary.
                    self.try_adaptive_swap();
                }
                true
            }
        }
    }

    fn act_slave(&mut self, s: usize) -> bool {
        if self.now < self.slaves[s].busy_until {
            return false;
        }
        let Some(tid) = self.slaves[s].task else {
            return false;
        };
        let task = self
            .tasks
            .iter_mut()
            .find(|t| t.id == tid)
            .expect("slave task exists");
        if task.is_done() {
            return false;
        }
        let pc = task.pc;
        let word_granular = self.config.word_granular_live_ins;
        let result = {
            let mut storage = task.storage_with_granularity(&self.arch, word_granular);
            step(&mut storage, self.original, pc)
        };
        match result {
            Err(_) => {
                // A fault on a speculative path is a task outcome, not an
                // engine error.
                task.status = TaskStatus::Done {
                    end: TaskEnd::Fault,
                    done_at: self.now + 1,
                };
                self.slaves[s].busy_until = self.now + 1;
                true
            }
            Ok(info) => {
                let cost = self.cost.instr_cost(CoreRole::Slave(s), &info).max(1);
                self.slaves[s].busy_until = self.now + cost;
                self.stats.slave_busy_cycles += cost;
                if info.halted {
                    task.status = TaskStatus::Done {
                        end: TaskEnd::Halted(pc),
                        done_at: self.slaves[s].busy_until,
                    };
                    return true;
                }
                task.executed += 1;
                task.pc = info.next_pc;
                self.stats.slave_instructions += 1;
                if self.boundaries.contains(info.next_pc) {
                    task.crossings += 1;
                }
                if task.crossings >= self.crossings_per_task {
                    task.status = TaskStatus::Done {
                        end: TaskEnd::Boundary(info.next_pc),
                        done_at: self.slaves[s].busy_until,
                    };
                } else if task.executed >= self.config.max_task_instrs {
                    task.status = TaskStatus::Done {
                        end: TaskEnd::Overrun,
                        done_at: self.slaves[s].busy_until,
                    };
                }
                true
            }
        }
    }

    fn act_master(&mut self) -> bool {
        if self.now < self.master_busy_until || self.master.status() != MasterStall::Active {
            return false;
        }
        if self.master.pending_spawn().is_some() {
            let Some(slave) = self.free_slave() else {
                return false; // stall until a slave frees up
            };
            let (start, mut overlay) = self.master.take_spawn(self.last_spawned);
            let cells: usize = overlay.first().map(|d| d.len()).unwrap_or(0);
            let mut predicted: Vec<Cell> = Vec::new();
            if self.config.enable_predictor {
                let predictions = self.predictor.predict(start);
                if !predictions.is_empty() {
                    // Inject at the overlay front: index 0 wins layered
                    // reads, so predictions override the master's
                    // checkpoint for exactly these cells — and, like any
                    // overlay-sourced read, are recorded as live-ins and
                    // verified at commit.
                    let mut delta = Delta::new();
                    for &(reg, value) in &predictions {
                        delta.set(Cell::Reg(reg), value);
                        predicted.push(Cell::Reg(reg));
                    }
                    overlay.insert(0, std::sync::Arc::new(delta));
                    self.stats.predictor_overrides += predictions.len() as u64;
                }
            }
            let id = TaskId(self.next_task_id);
            self.next_task_id += 1;
            let mut task = Task::new(id, start, slave, overlay);
            task.predicted = predicted;
            self.tasks.push_back(task);
            let dispatch = self.cost.dispatch_latency(cells);
            self.slaves[slave].task = Some(id);
            self.slaves[slave].busy_until = self.now + dispatch;
            let spawn = self.cost.spawn_overhead(cells);
            self.master_busy_until = self.now + spawn;
            self.stats.master_busy_cycles += spawn;
            self.stats.spawned_tasks += 1;
            self.last_spawned = Some(id.0);
            self.master_since_spawn = 0;
            return true;
        }
        if self.master_since_spawn > self.config.master_runahead {
            self.master.mark_lost();
            return true;
        }
        match self
            .master
            .step(self.swapped.as_deref().unwrap_or(self.distilled))
        {
            Some(info) => {
                let cost = self.cost.instr_cost(CoreRole::Master, &info).max(1);
                self.master_busy_until = self.now + cost;
                self.stats.master_busy_cycles += cost;
                self.stats.master_instructions += 1;
                self.master_since_spawn += 1;
                true
            }
            None => false,
        }
    }

    // ---- squash & recovery ----------------------------------------------

    fn record_squash_sample(
        &mut self,
        reason: SquashReason,
        cells: Vec<(mssp_machine::Cell, u64, u64)>,
    ) {
        let Some(task) = self.tasks.front() else {
            return;
        };
        let (task_start_pc, executed) = (task.start_pc, task.executed);
        if let Some(samples) = &mut self.squash_samples {
            if samples.len() < samples.capacity() {
                samples.push(SquashSample {
                    reason,
                    task_start_pc,
                    arch_pc: self.arch.pc(),
                    executed,
                    cells,
                });
            }
        }
    }

    fn squash_and_recover(&mut self, reason: SquashReason) {
        match reason {
            SquashReason::WrongPath => self.stats.squashes_wrong_path += 1,
            SquashReason::LiveInMismatch => self.stats.squashes_live_in += 1,
            SquashReason::Overrun => self.stats.squashes_overrun += 1,
            SquashReason::Fault => self.stats.squashes_fault += 1,
        }
        self.stats.squashed_tasks += self.tasks.len() as u64;
        for task in &self.tasks {
            self.stats.wasted_slave_instructions += task.executed;
        }
        for (i, slave) in self.slaves.iter_mut().enumerate() {
            if slave.task.take().is_some() {
                self.cost.on_squash(CoreRole::Slave(i));
                slave.busy_until = self.now;
            }
        }
        self.tasks.clear();
        self.cost.on_squash(CoreRole::Master);

        let penalty = self.cost.squash_penalty();
        self.verify_busy_until = self.now + penalty;
        self.stats.verify_busy_cycles += penalty;

        // Adaptive fallback: with a pathological master, repeated squashes
        // within the window take it offline for a stretch of sequential
        // recovery segments (the paper's revert-to-sequential dual mode).
        self.tasks_processed += 1;
        if self.config.throttle_threshold > 0 {
            self.recent_squashes.push_back(self.tasks_processed);
            while matches!(
                self.recent_squashes.front(),
                Some(&t) if t + self.config.throttle_window < self.tasks_processed
            ) {
                self.recent_squashes.pop_front();
            }
            if self.recent_squashes.len() as u32 > self.config.throttle_threshold
                && self.throttle_remaining == 0
            {
                self.throttle_remaining = self.config.throttle_duration;
                self.stats.throttle_events += 1;
                self.recent_squashes.clear();
            }
        }

        // The master stays down until recovery reaches the next boundary;
        // `finish_recovery` reseeds it from the then-consistent
        // architected state. (A parallel restart would race with the
        // recovery segment's atomic commit — see `finish_recovery`.)
        self.master.mark_lost();
        self.master_busy_until = self.now + penalty;
        self.master_since_spawn = 0;
        self.last_spawned = None;

        self.recovery = Some(Recovery {
            pc: self.arch.pc(),
            writes: Delta::new(),
            executed: 0,
            crossings: 0,
            busy_until: self.now + penalty,
        });
        self.stats.recovery_segments += 1;
    }

    // ---- adaptive hot-swap ------------------------------------------------

    /// If the controller has an outstanding recompile request, runs the
    /// recompiler synchronously and installs the candidate (when it
    /// validates) at the current task boundary.
    fn try_adaptive_swap(&mut self) {
        let Some(ad) = &mut self.adaptive else {
            return;
        };
        let Some(tier) = ad.ctl.take_request() else {
            return;
        };
        let started = Instant::now();
        let installable = match (ad.recompiler)(ad.ctl.live_profile(), tier) {
            Ok(d) if ad.ctl.validate_candidate(&d) => {
                ad.ctl.note_recompiled(tier, true);
                Some(Arc::new(d))
            }
            Ok(_) => {
                ad.ctl.note_candidate_rejected(tier);
                None
            }
            Err(_) => {
                ad.ctl.note_recompiled(tier, false);
                None
            }
        };
        if let Some(d) = installable {
            self.install_swap(d, tier, started);
        }
    }

    /// Installs a validated candidate: abandons in-flight tasks exactly
    /// like a squash (their predictions came from the outgoing program)
    /// and restarts the master on the new program from architected state.
    /// No recovery segment is needed — unlike a squash, architected state
    /// already sits at a consistent task boundary.
    fn install_swap(&mut self, d: Arc<Distilled>, tier: Tier, started: Instant) {
        self.stats.swap_abandoned_tasks += self.tasks.len() as u64;
        for task in &self.tasks {
            self.stats.wasted_slave_instructions += task.executed;
        }
        for (i, slave) in self.slaves.iter_mut().enumerate() {
            if slave.task.take().is_some() {
                self.cost.on_squash(CoreRole::Slave(i));
                slave.busy_until = self.now;
            }
        }
        self.tasks.clear();
        self.stats.spawn_vetoes += self.master.take_vetoed_spawns();
        self.swapped = Some(d);
        self.stats.swaps_installed += 1;
        match tier {
            Tier::Fast => self.stats.recompilations_fast += 1,
            Tier::Full => self.stats.recompilations_full += 1,
        }
        let cur = self.swapped.as_deref().expect("just installed");
        self.master = Master::restart_at(cur, self.arch.pc(), true, self.arch.clone());
        self.master_busy_until = self.now;
        self.master_since_spawn = 0;
        self.last_spawned = None;
        if let Some(ad) = &mut self.adaptive {
            let latency = started.elapsed().as_micros() as u64;
            ad.ctl.note_swap_installed(tier, latency, self.stats);
        }
    }

    fn start_starvation_recovery(&mut self) {
        // No tasks, no recovery, master unable to produce work: execute
        // the next segment non-speculatively.
        self.recovery = Some(Recovery {
            pc: self.arch.pc(),
            writes: Delta::new(),
            executed: 0,
            crossings: 0,
            busy_until: self.now,
        });
        self.stats.recovery_segments += 1;
    }

    // ---- time ------------------------------------------------------------

    fn free_slave(&self) -> Option<usize> {
        self.slaves.iter().position(|s| s.task.is_none())
    }

    fn advance_time(&mut self) {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            next = Some(match next {
                Some(n) => n.min(t),
                None => t,
            });
        };
        if let Some(rec) = &self.recovery {
            consider(rec.busy_until);
        }
        if self.recovery.is_none() {
            if let Some(task) = self.tasks.front() {
                match task.status {
                    TaskStatus::Done { done_at, .. } => {
                        consider(self.verify_busy_until.max(done_at));
                    }
                    TaskStatus::Running if task.start_pc != self.arch.pc() => {
                        consider(self.verify_busy_until);
                    }
                    TaskStatus::Running => {}
                }
            }
        }
        for slave in &self.slaves {
            if let Some(tid) = slave.task {
                let running = self
                    .tasks
                    .iter()
                    .find(|t| t.id == tid)
                    .is_some_and(|t| !t.is_done());
                if running {
                    consider(slave.busy_until);
                }
            }
        }
        if self.master.status() == MasterStall::Active {
            let can_spawn = self.master.pending_spawn().is_none() || self.free_slave().is_some();
            if can_spawn {
                consider(self.master_busy_until);
            }
        }
        match next {
            Some(t) => self.now = self.now.max(t).max(self.now + 1),
            None => self.start_starvation_recovery(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitCost;
    use mssp_analysis::Profile;
    use mssp_distill::{distill, DistillConfig, DistillLevel, Distilled};
    use mssp_isa::asm::assemble;
    use mssp_isa::Reg;
    use mssp_machine::SeqMachine;
    use std::collections::{BTreeMap, BTreeSet};

    fn seq_state(p: &Program) -> MachineState {
        let mut m = SeqMachine::boot(p);
        m.run(u64::MAX).unwrap();
        let mut s = m.into_state();
        // The engine's final state has the halt PC; SeqMachine leaves the
        // PC at the halt instruction as well.
        let pc = s.pc();
        s.set_pc(pc);
        s
    }

    fn mssp_run(p: &Program, d: &Distilled, slaves: usize) -> MsspRun {
        let config = EngineConfig {
            num_slaves: slaves,
            ..EngineConfig::default()
        };
        Engine::new(p, d, config, UnitCost).run().unwrap()
    }

    const SUM: &str = "
        main: addi s0, zero, 300
        loop: add  s1, s1, s0
              addi s0, s0, -1
              bnez s0, loop
              halt";

    #[test]
    fn matches_sequential_on_simple_loop() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let run = mssp_run(&p, &d, 4);
        let seq = seq_state(&p);
        assert_eq!(run.state.reg(Reg::S1), seq.reg(Reg::S1));
        assert!(run.stats.committed_tasks > 1, "{:?}", run.stats);
        assert_eq!(run.stats.squash_events(), 0);
    }

    #[test]
    fn commits_equal_sequential_instruction_count() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let run = mssp_run(&p, &d, 4);
        let mut m = SeqMachine::boot(&p);
        m.run(u64::MAX).unwrap();
        assert_eq!(run.stats.committed_instructions, m.instructions());
    }

    #[test]
    fn works_with_single_slave() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let run = mssp_run(&p, &d, 1);
        assert_eq!(run.state.reg(Reg::S1), seq_state(&p).reg(Reg::S1));
    }

    #[test]
    fn conservative_and_aggressive_levels_agree_on_state() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        for level in DistillLevel::all() {
            let d = distill(&p, &prof, &DistillConfig::at_level(level)).unwrap();
            let run = mssp_run(&p, &d, 4);
            assert_eq!(
                run.state.reg(Reg::S1),
                seq_state(&p).reg(Reg::S1),
                "level {level}"
            );
        }
    }

    /// An adversarial master: the distilled "program" is complete garbage
    /// (it writes wrong values everywhere and spawns at the right
    /// boundary). Correctness must be unaffected — only performance.
    #[test]
    fn garbage_master_cannot_corrupt_architected_state() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let honest = distill(&p, &prof, &DistillConfig::default()).unwrap();

        // Build a lying master: same boundary set, but the code just
        // scribbles wrong values into the loop registers forever.
        let loop_pc = p.symbol("loop").unwrap();
        let evil_src = "
            main: addi s1, zero, 123
            evil: addi s0, zero, 77
                  addi s1, s1, 13
                  j evil";
        let evil = assemble(evil_src).unwrap();
        // Remap: entry -> evil entry, loop boundary -> the `evil` block.
        let evil_block = evil.symbol("evil").unwrap();
        let mut map = BTreeMap::new();
        map.insert(p.entry(), evil.entry());
        map.insert(loop_pc, evil_block);
        let d = Distilled::from_parts(evil, honest.boundaries().clone(), map);
        let run = mssp_run(&p, &d, 4);
        let seq = seq_state(&p);
        assert_eq!(run.state.reg(Reg::S1), seq.reg(Reg::S1));
        assert_eq!(run.state.reg(Reg::S0), seq.reg(Reg::S0));
        // The lying master caused squashes and recovery did the work.
        assert!(run.stats.squash_events() > 0 || run.stats.recovery_segments > 0);
    }

    /// A master that halts immediately: everything must fall back to
    /// sequential recovery segments.
    #[test]
    fn dead_master_degrades_to_sequential() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let honest = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let dead = assemble("main: halt").unwrap();
        let mut map = BTreeMap::new();
        map.insert(p.entry(), dead.entry());
        let d = Distilled::from_parts(dead, honest.boundaries().clone(), map);
        let run = mssp_run(&p, &d, 4);
        assert_eq!(run.state.reg(Reg::S1), seq_state(&p).reg(Reg::S1));
        assert!(run.stats.recovery_instructions > 0);
    }

    /// No boundaries at all: the first (and only) task runs from entry
    /// clear to `halt` and commits — MSSP degenerates gracefully.
    #[test]
    fn empty_boundary_set_still_terminates_correctly() {
        let p = assemble(SUM).unwrap();
        let dead = assemble("main: halt").unwrap();
        let mut map = BTreeMap::new();
        map.insert(p.entry(), dead.entry());
        let d = Distilled::from_parts(dead, BTreeSet::new(), map);
        let run = mssp_run(&p, &d, 2);
        assert_eq!(run.state.reg(Reg::S1), seq_state(&p).reg(Reg::S1));
    }

    #[test]
    fn commit_trace_is_subsequence_of_seq_trace() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let mut engine = Engine::new(
            &p,
            &d,
            EngineConfig {
                num_slaves: 3,
                ..EngineConfig::default()
            },
            UnitCost,
        );
        engine.enable_commit_trace();
        let run = engine.run().unwrap();

        // Jumping refinement: commit points appear in order within the
        // sequential trace (and final state matches). The typed checker
        // reports `CommitOutOfOrder` instead of panicking mid-test.
        crate::check_refinement(&p, &run).expect("commit trace refines SEQ");
        let trace = run.commit_trace.expect("tracing enabled");
        assert!(trace.len() > 2, "expected several commit points");
    }

    #[test]
    fn memory_carrying_loop_matches_sequential() {
        // Tasks communicate through memory (a running prefix sum), so
        // every task's live-ins include the previous task's stores.
        let src = "
            main:  li   s2, 0x200000
                   addi s0, zero, 120
            loop:  ld   s1, 0(s2)
                   add  s1, s1, s0
                   sd   s1, 0(s2)
                   sd   s1, 8(s2)
                   addi s2, s2, 8
                   addi s0, s0, -1
                   bnez s0, loop
                   halt";
        let p = assemble(src).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let run = mssp_run(&p, &d, 4);
        let seq = seq_state(&p);
        assert_eq!(run.state.reg(Reg::S1), seq.reg(Reg::S1));
        // Compare the written memory region too.
        for w in (0x200000u64 >> 3)..((0x200000u64 >> 3) + 130) {
            assert_eq!(run.state.load_word(w), seq.load_word(w), "word {w:#x}");
        }
    }

    #[test]
    fn cycle_limit_reported() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let config = EngineConfig {
            max_cycles: 10,
            ..EngineConfig::default()
        };
        let err = Engine::new(&p, &d, config, UnitCost).run().unwrap_err();
        assert_eq!(err, EngineError::CycleLimit);
    }

    #[test]
    fn stats_waste_and_recovery_fractions_bounded() {
        let p = assemble(SUM).unwrap();
        let prof = Profile::collect(&p, u64::MAX).unwrap();
        let d = distill(&p, &prof, &DistillConfig::default()).unwrap();
        let run = mssp_run(&p, &d, 4);
        assert!((0.0..=1.0).contains(&run.stats.waste_fraction()));
        assert!((0.0..=1.0).contains(&run.stats.recovery_fraction()));
    }

    #[test]
    fn recheck_ratio_is_zero_not_nan_when_nothing_was_presented() {
        // Regression: with no live-ins presented (zero-task or
        // squash-only runs) the ratio used to be the 0/0 branch; it must
        // be exactly 0.0 — never NaN, never a placeholder 1.0 — so
        // `--max-recheck-ratio` gates compare a real number.
        let stats = EngineStats::default();
        assert_eq!(stats.live_ins_rechecked + stats.live_ins_skipped, 0);
        let ratio = stats.recheck_ratio();
        assert!(!ratio.is_nan());
        assert_eq!(ratio, 0.0);
        // And a populated run still reports the true fraction.
        let populated = EngineStats {
            live_ins_rechecked: 1,
            live_ins_skipped: 3,
            ..EngineStats::default()
        };
        assert_eq!(populated.recheck_ratio(), 0.25);
    }

    #[test]
    fn predictor_rescues_commits_from_a_clobbering_master() {
        // The master clobbers s2 inside the loop while the original
        // holds it at 9: every checkpoint is wrong on s2, so every task
        // live-in-mismatches until the last-value predictor saturates on
        // the constant architected value and overrides the checkpoint at
        // spawn — from then on tasks commit on the injected prediction.
        let p = assemble(
            "main: addi s2, zero, 9
                   addi s0, zero, 200
             loop: add  t0, s2, s0
                   sd   t0, -8(sp)
                   addi s0, s0, -1
                   bnez s0, loop
                   ld   s1, -8(sp)
                   halt",
        )
        .unwrap();
        let wrong = assemble(
            "main: addi s2, zero, 9
                   addi s0, zero, 200
             loop: addi s2, zero, 77
                   addi s0, s0, -1
                   j    loop",
        )
        .unwrap();
        let boundary = p.symbol("loop").unwrap();
        let d = Distilled::from_parts(
            wrong.clone(),
            BTreeSet::from([boundary]),
            BTreeMap::from([
                (p.entry(), wrong.entry()),
                (boundary, wrong.symbol("loop").unwrap()),
            ]),
        );

        let run = mssp_run(&p, &d, 4);
        assert_eq!(run.state.reg(Reg::S1), seq_state(&p).reg(Reg::S1));
        assert!(
            run.stats.predictor_hits > 0,
            "prediction must rescue commits: {:?}",
            run.stats
        );
        assert!(run.stats.predictor_overrides >= run.stats.predictor_hits);
        assert!(run.stats.squashes_live_in_stale > 0);
        // Attribution partitions live-in squashes exactly.
        assert_eq!(
            run.stats.squashes_live_in,
            run.stats.squashes_live_in_predicted + run.stats.squashes_live_in_stale
        );
        assert!(run.predictor_report.observations > 0);
        assert!(run.predictor_report.last_value_correct > 0);

        // Same fixture, predictor off: the squash storm runs unchecked.
        let off = Engine::new(
            &p,
            &d,
            EngineConfig {
                num_slaves: 4,
                enable_predictor: false,
                ..EngineConfig::default()
            },
            UnitCost,
        )
        .run()
        .unwrap();
        assert_eq!(off.state.reg(Reg::S1), seq_state(&p).reg(Reg::S1));
        assert_eq!(off.stats.predictor_overrides, 0);
        assert!(
            off.stats.squashes_live_in > run.stats.squashes_live_in,
            "off {} vs on {}",
            off.stats.squashes_live_in,
            run.stats.squashes_live_in
        );
        assert_eq!(off.predictor_report.observations, 0);
    }

    #[test]
    fn spawn_guard_vetoes_the_doomed_spawn_at_loop_exit() {
        use mssp_distill::{Slice, SliceKind};
        // The master asserts phase A's back-edge forever; once the
        // architected run moves on to phase B, every further spawn
        // starts at the A boundary and is a guaranteed wrong-path
        // squash. The guard re-evaluates the exit condition over the
        // task window at spawn time and vetoes instead, stalling the
        // master into sequential recovery — squash avoided, state exact.
        let p = assemble(
            "main:  addi s0, zero, 30
             loopa: addi s1, s1, 1
                    addi s0, s0, -1
                    bnez s0, loopa
                    addi s0, zero, 30
             loopb: addi s2, s2, 2
                    addi s0, s0, -1
                    bnez s0, loopb
                    halt",
        )
        .unwrap();
        let wrong = assemble(
            "main:  addi s0, zero, 30
             loopa: addi s1, s1, 1
                    addi s0, s0, -1
                    j    loopa",
        )
        .unwrap();
        let boundary = p.symbol("loopa").unwrap();
        // loopb is a boundary too (so the architected run keeps crossing
        // boundaries after the phase transition, exposing the master's
        // stray loopa spawns as wrong-path) but is deliberately left out
        // of the master's image: once vetoed/squashed there, the master
        // goes Lost and starvation recovery carries phase B.
        let d = Distilled::from_parts(
            wrong.clone(),
            BTreeSet::from([boundary, p.symbol("loopb").unwrap()]),
            BTreeMap::from([
                (p.entry(), wrong.entry()),
                (boundary, wrong.symbol("loopa").unwrap()),
            ]),
        );
        let unguarded = mssp_run(&p, &d, 2);
        assert_eq!(unguarded.state.reg(Reg::S2), seq_state(&p).reg(Reg::S2));
        assert!(
            unguarded.stats.squashes_wrong_path > 0,
            "fixture must be doomed without the guard: {:?}",
            unguarded.stats
        );

        // A stride-seeded guard: the bare exit branch with s0 declared
        // at stride -1 per crossing. Probing absolute crossings (with
        // lookback, since nothing is fed back) means a master that has
        // already run past the exit still sees the probe hit zero and
        // vetoes — a fed-back decrement would count down *through* zero
        // and miss it.
        let guard = Slice {
            kind: SliceKind::SpawnGuard {
                asserted_taken: true,
            },
            program: assemble("main: bnez s0, main").unwrap(),
            inputs: vec![(Reg::S0, -1)],
            window: 1,
            home_pc: boundary + 8,
        };
        let d = d.with_slices(BTreeMap::from([(boundary, vec![guard])]));
        let guarded = mssp_run(&p, &d, 2);
        assert_eq!(guarded.state.reg(Reg::S1), seq_state(&p).reg(Reg::S1));
        assert_eq!(guarded.state.reg(Reg::S2), seq_state(&p).reg(Reg::S2));
        assert_eq!(guarded.state.pc(), seq_state(&p).pc());
        assert!(
            guarded.stats.spawn_vetoes > 0,
            "the guard must veto: {:?}",
            guarded.stats
        );
        assert_eq!(
            guarded.stats.squashes_wrong_path, 0,
            "a veto must replace the wrong-path squash: {:?}",
            guarded.stats
        );
    }
}
